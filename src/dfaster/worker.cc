#include "dfaster/worker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct MigrationWorkerMetrics {
  Counter* forward_ops;
  Counter* forward_failures;
  Counter* readmissions;
  Counter* install_batches;
  Counter* install_records;
};

const MigrationWorkerMetrics& MigMetrics() {
  static const MigrationWorkerMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return MigrationWorkerMetrics{
        r.counter("cluster.migration.forward_ops"),
        r.counter("cluster.migration.forward_failures"),
        r.counter("cluster.migration.readmissions"),
        r.counter("cluster.migration.install_batches"),
        r.counter("cluster.migration.install_records")};
  }();
  return m;
}

}  // namespace

DFasterWorker::DFasterWorker(DFasterWorkerConfig config)
    : config_(std::move(config)),
      owners_(YcsbWorkload::kNumPartitions),
      seals_(YcsbWorkload::kNumPartitions) {
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    const WorkerId owner =
        config_.start_empty
            ? kInvalidWorker
            : YcsbWorkload::DefaultOwner(vp, config_.num_workers);
    // relaxed: pre-publication init; readers start after the constructor.
    owners_[vp].store(owner, std::memory_order_relaxed);
    seals_[vp] = std::make_unique<SealState>();
  }
  store_ = std::make_unique<FasterStore>(std::move(config_.faster));
  if (config_.mode == RecoverabilityMode::kDpr) {
    config_.dpr.worker_id = config_.id;
    if (!config_.dpr.ckpt_signals) {
      // Feed the cadence controller live signals from this shard's store
      // and the box-wide obs gauges (safe: store_ outlives dpr_worker_).
      config_.dpr.ckpt_signals = [this] { return CollectCkptSignals(); };
    }
    dpr_worker_ = std::make_unique<DprWorker>(store_.get(), config_.dpr);
  }
}

CkptSignals DFasterWorker::CollectCkptSignals() const {
  struct SignalGauges {
    Gauge* exception_list;
    Gauge* sched_pending;
  };
  static const SignalGauges g = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return SignalGauges{r.gauge("dpr.session.exception_list"),
                        r.gauge("storage.sched.pending")};
  }();
  CkptSignals s;
  const LogAddress tail = store_->tail_address();
  const LogAddress ro = store_->read_only_address();
  s.dirty_bytes = tail > ro ? tail - ro : 0;
  if (s.dirty_bytes == 0 && dpr_worker_ != nullptr &&
      store_->CurrentVersion() > dpr_worker_->last_reported()) {
    // The store's version advanced outside the commit pipeline (a
    // compaction stamp, a fast-forward) and the finder has not heard about
    // it. The cut cannot cover that version until this shard checkpoints
    // once more, so it must not read as idle — progress waits on it
    // (FinishCompaction's commit barrier, cross-worker Vmax catch-up).
    s.dirty_bytes = 1;
  }
  s.committed_watermark =
      dpr_worker_ != nullptr ? dpr_worker_->persisted_watermark() : 0;
  s.exception_list_len = g.exception_list->value();
  s.storage_queue_depth = g.sched_pending->value();
  return s;
}

DFasterWorker::~DFasterWorker() { Stop(); }

Status DFasterWorker::Start(std::unique_ptr<RpcServer> server) {
  stop_.store(false, std::memory_order_release);
  if (dpr_worker_ != nullptr) {
    DPR_RETURN_NOT_OK(dpr_worker_->Start());
  } else if (config_.mode == RecoverabilityMode::kEventual &&
             config_.dpr.checkpoint_interval_us > 0) {
    eventual_timer_ = std::thread([this] { EventualTimerLoop(); });
  }
  if (config_.compaction_threshold_bytes > 0 && dpr_worker_ != nullptr) {
    gc_thread_ = std::thread([this] { GcLoop(); });
  }
  if (server != nullptr) {
    server_ = std::move(server);
    DPR_RETURN_NOT_OK(server_->Start(
        [this](Slice request, std::string* response) {
          ExecuteBatch(request, response);
        }));
    address_ = server_->address();
  }
  return Status::OK();
}

void DFasterWorker::Stop() {
  if (stop_.exchange(true)) return;
  if (server_ != nullptr) server_->Stop();
  if (dpr_worker_ != nullptr) dpr_worker_->Stop();
  if (eventual_timer_.joinable()) eventual_timer_.join();
  if (gc_thread_.joinable()) gc_thread_.join();
  store_->WaitForCheckpoints();
}

void DFasterWorker::EventualTimerLoop() {
  // "No DPR": checkpoint on a local timer without coordination or
  // reporting. Cadence still comes from the controller — uncoordinated
  // does not mean unscheduled, and idle kEventual shards skip fsyncs too.
  CkptCadenceController controller(
      config_.dpr.ckpt_policy.Resolve(config_.dpr.checkpoint_interval_us));
  uint64_t delay_us = config_.dpr.checkpoint_interval_us;
  while (!stop_.load(std::memory_order_acquire)) {
    SleepMicros(delay_us);
    if (stop_.load(std::memory_order_acquire)) break;
    const CkptDecision decision =
        controller.Decide(CollectCkptSignals(), NowMicros());
    delay_us = decision.next_delay_us;
    if (decision.action == CkptAction::kSkip) continue;
    Version token;
    Status s = store_->PerformCheckpoint(
        store_->CurrentVersion() + 1, nullptr, &token,
        CheckpointHints{
            .index_image = controller.policy().adaptive,
            .delta = decision.action == CkptAction::kDelta});
    if (!s.ok() && !s.IsBusy()) {
      DPR_WARN("eventual checkpoint: %s", s.ToString().c_str());
    }
  }
}

void DFasterWorker::GcLoop() {
  // Two-phase GC driven by the DPR watermark: start a compaction when the
  // reclaimable prefix exceeds the threshold; finish it once the committed
  // cut covers the compaction checkpoint (only entries inside the DPR
  // guarantee are ever dropped).
  while (!stop_.load(std::memory_order_acquire)) {
    // dprlint: allowed(ckpt-interval) GC pacing only — checkpoint cadence
    // itself lives in CkptCadenceController; GC just trails it by a beat.
    SleepMicros(config_.dpr.checkpoint_interval_us + 1000);
    if (stop_.load(std::memory_order_acquire)) break;
    const Version watermark = dpr_worker_->persisted_watermark();
    if (pending_compaction_ != kInvalidVersion) {
      Status s = store_->FinishCompaction(pending_compaction_, watermark);
      if (s.ok() || s.IsNotFound()) pending_compaction_ = kInvalidVersion;
      continue;
    }
    if (watermark == kInvalidVersion) continue;
    const uint64_t reclaimable =
        store_->read_only_address() - store_->begin_address();
    if (reclaimable < config_.compaction_threshold_bytes) continue;
    Version token;
    Status s = store_->StartCompaction(watermark, &token);
    if (s.ok()) {
      pending_compaction_ = token;
    } else if (!s.IsNotFound() && !s.IsBusy() &&
               s.code() != Status::Code::kInvalidArgument) {
      DPR_WARN("worker %u compaction: %s", config_.id,
               s.ToString().c_str());
    }
  }
}

bool DFasterWorker::OwnsPartition(uint32_t partition) const {
  return owners_[partition].load(std::memory_order_acquire) == config_.id;
}

void DFasterWorker::DisownPartition(uint32_t partition) {
  owners_[partition].store(kInvalidWorker, std::memory_order_release);
}

void DFasterWorker::AdoptPartition(uint32_t partition) {
  owners_[partition].store(config_.id, std::memory_order_release);
}

uint32_t DFasterWorker::OwnedPartitionCount() const {
  uint32_t count = 0;
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    if (OwnsPartition(vp)) ++count;
  }
  return count;
}

Status DFasterWorker::SealPartition(uint32_t partition,
                                    std::shared_ptr<MigrationChannel> channel) {
  if (partition >= seals_.size() || channel == nullptr) {
    return Status::InvalidArgument("bad seal request");
  }
  if (!OwnsPartition(partition)) {
    return Status::InvalidArgument("cannot seal a partition we do not own");
  }
  SealState& seal = *seals_[partition];
  {
    MutexLock lock(seal.mu);
    if (seal.channel != nullptr) {
      return Status::Busy("partition already sealed");
    }
    seal.channel = std::move(channel);
    seal.failed.store(false, std::memory_order_relaxed);
    seal.sealed.store(true, std::memory_order_release);
  }
  // Seal barrier: batches admitted before the gate flipped hold the shared
  // version latch; TryCommit takes it exclusively, so once it returns every
  // such batch has fully executed and the drain's snapshot covers it. (A
  // Busy checkpoint outcome still took the latch — the barrier, not the
  // checkpoint itself, is what correctness needs here; the version boundary
  // additionally keeps ownership static within pre-seal versions.)
  if (dpr_worker_ != nullptr) {
    Status s = dpr_worker_->TryCommit();
    if (!s.ok() && !s.IsBusy()) {
      UnsealPartition(partition, /*disown=*/false);
      return s;
    }
  }
  return Status::OK();
}

void DFasterWorker::UnsealPartition(uint32_t partition, bool disown) {
  SealState& seal = *seals_[partition];
  MutexLock lock(seal.mu);
  if (disown) {
    // Completed migration: drop ownership under the seal lock, before the
    // channel goes away. An op already in the sealed slow path re-checks
    // ownership under this lock, so it either forwarded (pre-flip) or
    // bounces kNotOwner (post-flip) — never a local-only write.
    owners_[partition].store(kInvalidWorker, std::memory_order_release);
  }
  seal.channel = nullptr;
  seal.sealed.store(false, std::memory_order_release);
}

bool DFasterWorker::IsPartitionSealed(uint32_t partition) const {
  return seals_[partition]->sealed.load(std::memory_order_acquire);
}

bool DFasterWorker::SealForwardFailed(uint32_t partition) const {
  return seals_[partition]->failed.load(std::memory_order_relaxed);
}

Status DFasterWorker::DrainSealedPartition(uint32_t partition,
                                           size_t chunk_ops,
                                           Version* max_installed) {
  if (max_installed != nullptr) *max_installed = kInvalidVersion;
  if (partition >= seals_.size() || chunk_ops == 0) {
    return Status::InvalidArgument("bad drain request");
  }
  SealState& seal = *seals_[partition];
  // Key snapshot without the seal lock: keys created after this scan went
  // through the forward path (the partition is already sealed), so missing
  // them here is safe.
  std::vector<uint64_t> keys;
  store_->Scan([&](uint64_t key, Slice /*value*/) {
    if (YcsbWorkload::PartitionOf(key) == partition) keys.push_back(key);
  });
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  auto session = store_->NewSession();
  size_t i = 0;
  while (i < keys.size()) {
    MutexLock lock(seal.mu);
    if (seal.channel == nullptr) {
      return Status::Aborted("partition unsealed during drain");
    }
    KvBatchRequest chunk;
    chunk.install = true;
    chunk.header = MakeInstallHeader(partition);
    for (; i < keys.size() && chunk.ops.size() < chunk_ops; ++i) {
      uint64_t value = 0;
      Status rs = session->Read(keys[i], &value);
      if (rs.IsNotFound()) continue;  // deleted since the scan; the
                                      // forwarded delete already covered it
      if (!rs.ok()) return rs;
      // Values re-read under the seal lock: a drain chunk never carries a
      // value older than a forward the target already saw.
      chunk.ops.push_back(KvOp{KvOp::Type::kUpsert, keys[i], value});
    }
    if (chunk.ops.empty()) continue;
    KvBatchResponse response;
    Status fs = seal.channel->Install(chunk, &response);
    bool chunk_ok =
        fs.ok() &&
        response.header.status == DprResponseHeader::BatchStatus::kOk;
    if (chunk_ok) {
      for (const KvOpResult& r : response.results) {
        if (r.result != KvResult::kOk) chunk_ok = false;
      }
    }
    if (!chunk_ok) {
      seal.failed.store(true, std::memory_order_relaxed);
      return fs.ok() ? Status::Unavailable("migration install rejected")
                     : fs;
    }
    MigMetrics().install_batches->Add();
    MigMetrics().install_records->Add(chunk.ops.size());
    if (max_installed != nullptr &&
        response.header.executed_version != kInvalidVersion) {
      *max_installed =
          std::max(*max_installed, response.header.executed_version);
    }
  }
  return Status::OK();
}

void DFasterWorker::ApplyOp(FasterStore::Session* session, const KvOp& op,
                            KvOpResult* out) {
  Status s;
  switch (op.type) {
    case KvOp::Type::kRead:
      s = session->Read(op.key, &out->value);
      break;
    case KvOp::Type::kUpsert:
      s = session->Upsert(op.key, op.value);
      break;
    case KvOp::Type::kRmw:
      s = session->Rmw(op.key, op.value, &out->value);
      break;
    case KvOp::Type::kDelete:
      s = session->Delete(op.key);
      break;
  }
  if (s.ok()) {
    out->result = KvResult::kOk;
  } else if (s.IsNotFound()) {
    out->result = KvResult::kNotFound;
  } else {
    out->result = KvResult::kError;
  }
}

DprRequestHeader DFasterWorker::MakeInstallHeader(uint32_t partition) const {
  DprRequestHeader header;
  header.session_id = kMigrationSessionBase + partition;
  if (dpr_worker_ != nullptr) {
    header.world_line = dpr_worker_->world_line();
    header.version = store_->CurrentVersion();
    header.deps[config_.id] = header.version;
  }
  return header;
}

void DFasterWorker::RunOps(const KvBatchRequest& request, Version /*version*/,
                           KvBatchResponse* response, bool check_ownership,
                           DependencySet* forward_deps) {
  auto session = store_->NewSession();
  response->results.resize(request.ops.size());
  for (size_t i = 0; i < request.ops.size(); ++i) {
    const KvOp& op = request.ops[i];
    KvOpResult& out = response->results[i];
    const uint32_t partition = YcsbWorkload::PartitionOf(op.key);
    SealState& seal = *seals_[partition];
    if (!seal.sealed.load(std::memory_order_acquire)) {
      // Fast path: no dual-ownership window. In kDpr mode this cannot race
      // a migration past its seal barrier — the batch holds the shared
      // version latch, which SealPartition's checkpoint must drain first.
      if (check_ownership && !OwnsPartition(partition)) {
        out.result = KvResult::kNotOwner;
        continue;
      }
      ApplyOp(session.get(), op, &out);
      continue;
    }
    // Sealed slow path: local apply + forward are one atom under the seal
    // lock so the target observes writes in source apply order (upserts do
    // not commute with each other or with drain chunks).
    MutexLock lock(seal.mu);
    if (check_ownership && !OwnsPartition(partition)) {
      // Either never ours, or the migration completed (UnsealPartition
      // disowns under this lock before clearing the channel).
      out.result = KvResult::kNotOwner;
      continue;
    }
    ApplyOp(session.get(), op, &out);
    if (seal.channel == nullptr) continue;  // unsealed concurrently: no fwd
    if (out.result != KvResult::kOk || op.type == KvOp::Type::kRead) continue;
    KvBatchRequest forward;
    forward.install = true;
    forward.header = MakeInstallHeader(partition);
    KvOp fwd_op = op;
    if (op.type == KvOp::Type::kRmw) {
      // Forward the computed result as an upsert: the target must not
      // re-apply the delta to its own (possibly behind) base value.
      fwd_op.type = KvOp::Type::kUpsert;
      fwd_op.value = out.value;
    }
    forward.ops.push_back(fwd_op);
    KvBatchResponse fwd_response;
    Status fs = seal.channel->Install(forward, &fwd_response);
    MigMetrics().forward_ops->Add();
    const bool fwd_ok =
        fs.ok() &&
        fwd_response.header.status == DprResponseHeader::BatchStatus::kOk;
    if (!fwd_ok) {
      // The op applied locally but its fate at the target is unknown; the
      // migration can no longer complete. Surface kError so the client
      // treats the op outcome as uncertain.
      seal.failed.store(true, std::memory_order_relaxed);
      MigMetrics().forward_failures->Add();
      out.result = KvResult::kError;
      continue;
    }
    if (forward_deps != nullptr && dpr_worker_ != nullptr &&
        fwd_response.header.executed_version != kInvalidVersion) {
      Version& slot = (*forward_deps)[seal.channel->target()];
      slot = std::max(slot, fwd_response.header.executed_version);
    }
  }
}

void DFasterWorker::ExecuteBatch(const KvBatchRequest& request,
                                 KvBatchResponse* response) {
  ExecuteBatchInternal(request, response, /*check_ownership=*/true);
}

Status DFasterWorker::InstallMigratedData(const KvBatchRequest& request,
                                          KvBatchResponse* response) {
  ExecuteBatchInternal(request, response, /*check_ownership=*/false);
  return response->header.status == DprResponseHeader::BatchStatus::kOk
             ? Status::OK()
             : Status::Unavailable("migration batch rejected");
}

void DFasterWorker::ExecuteBatchInternal(const KvBatchRequest& request,
                                         KvBatchResponse* response,
                                         bool check_ownership) {
  if (dpr_worker_ == nullptr) {
    // kNone / kEventual: no admission control, no commit tracking.
    RunOps(request, store_->CurrentVersion(), response, check_ownership,
           /*forward_deps=*/nullptr);
    response->header.status = DprResponseHeader::BatchStatus::kOk;
    response->header.world_line = kInitialWorldLine;
    response->header.executed_version = store_->CurrentVersion();
    response->header.persisted_version = store_->LargestDurableToken();
    return;
  }
  Version version = kInvalidVersion;
  Status admit = dpr_worker_->BeginBatch(request.header, &version);
  if (!admit.ok()) {
    const auto status = admit.IsAborted()
                            ? DprResponseHeader::BatchStatus::kWorldLineShift
                            : DprResponseHeader::BatchStatus::kRetryLater;
    dpr_worker_->FillResponse(kInvalidVersion, status, &response->header);
    response->results.clear();
    return;
  }
  DependencySet forward_deps;
  RunOps(request, version, response, check_ownership, &forward_deps);
  dpr_worker_->EndBatch();
  if (!forward_deps.empty()) {
    // Dual-ownership re-admission: some op was forwarded to a migration
    // target that executed it in version vd, possibly > the version this
    // batch ran in. Acking the batch at the original version would let the
    // approximate finder's flat-min cut cover the ack while excluding the
    // target's copy of the write (a version-clock violation). Re-admit at a
    // version >= max(vd) with explicit downward deps on the target, and ack
    // *that* version: now a committed ack implies the forwarded writes are
    // inside the cut on both sides. The fast-forward is >=, so source and
    // target version clocks equalize after one round and the extra
    // checkpoints are transient.
    Version max_forwarded = kInvalidVersion;
    for (const auto& [w, v] : forward_deps) {
      (void)w;
      max_forwarded = std::max(max_forwarded, v);
    }
    DprRequestHeader readmit;
    readmit.session_id = request.header.session_id;
    readmit.world_line = dpr_worker_->world_line();
    readmit.version = max_forwarded;
    readmit.deps = forward_deps;
    Version ack_version = kInvalidVersion;
    Status admit2 = dpr_worker_->BeginBatch(readmit, &ack_version);
    if (!admit2.ok()) {
      // A rollback raced the window. The local effects are applied but the
      // entangled ack version is gone; make the client replay the batch
      // (at-least-once across the seal window — see DESIGN.md §4i).
      const auto status =
          admit2.IsAborted() ? DprResponseHeader::BatchStatus::kWorldLineShift
                             : DprResponseHeader::BatchStatus::kRetryLater;
      dpr_worker_->FillResponse(kInvalidVersion, status, &response->header);
      response->results.clear();
      return;
    }
    dpr_worker_->EndBatch();
    MigMetrics().readmissions->Add();
    version = ack_version;
  }
  dpr_worker_->FillResponse(version, DprResponseHeader::BatchStatus::kOk,
                            &response->header);
}

void DFasterWorker::ExecuteBatch(Slice request, std::string* response) {
  KvBatchRequest req;
  KvBatchResponse resp;
  if (!req.DecodeFrom(request)) {
    resp.header.status = DprResponseHeader::BatchStatus::kRetryLater;
    resp.EncodeTo(response);
    return;
  }
  if (req.install) {
    // Worker-to-worker migration install: the partition is mid-transfer and
    // deliberately unowned at the receiver; skip the ownership check.
    (void)InstallMigratedData(req, &resp);
  } else {
    ExecuteBatch(req, &resp);
  }
  resp.EncodeTo(response);
}

}  // namespace dpr
