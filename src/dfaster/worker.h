#ifndef DPR_DFASTER_WORKER_H_
#define DPR_DFASTER_WORKER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dfaster/protocol.h"
#include "dpr/worker.h"
#include "faster/faster_store.h"
#include "net/rpc.h"
#include "workload/ycsb.h"

namespace dpr {

/// Recoverability modes evaluated in the paper:
///  * kNone      — pure in-memory cache, no checkpoints ("No Chkpts");
///  * kEventual  — uncoordinated periodic checkpoints, no DPR ("No DPR");
///  * kDpr       — periodic checkpoints coordinated by the DPR protocol.
enum class RecoverabilityMode { kNone, kEventual, kDpr };

struct DFasterWorkerConfig {
  WorkerId id = 0;
  uint32_t num_workers = 1;
  /// A worker joining an existing cluster starts owning nothing; partitions
  /// are handed to it via ownership transfer (§5.3).
  bool start_empty = false;
  RecoverabilityMode mode = RecoverabilityMode::kDpr;
  FasterOptions faster;
  /// Used in kDpr mode (finder, checkpoint interval) and, for its
  /// checkpoint_interval_us, in kEventual mode too.
  DprWorkerOptions dpr;
  /// Log-compaction trigger: when the in-memory log exceeds this many bytes
  /// of reclaimable prefix, garbage-collect up to the DPR watermark
  /// (two-phase; only entries inside the guarantee are dropped). 0 disables.
  uint64_t compaction_threshold_bytes = 0;
};

/// One D-FASTER shard (paper §5.2): a FASTER instance with a DPR worker
/// wrapped around it, an RPC endpoint for remote execution, and a direct
/// entry point for co-located execution.
class DFasterWorker {
 public:
  explicit DFasterWorker(DFasterWorkerConfig config);
  ~DFasterWorker();

  DFasterWorker(const DFasterWorker&) = delete;
  DFasterWorker& operator=(const DFasterWorker&) = delete;

  /// Starts DPR participation and, if `server` is non-null, remote serving.
  Status Start(std::unique_ptr<RpcServer> server);
  void Stop();

  /// Executes an encoded KvBatchRequest; used by both the RPC handler and
  /// co-located clients (which call it directly, skipping the network).
  /// Safe under concurrent invocation: the TCP transport runs handlers on a
  /// shared executor pool, so two batches — even from the same connection —
  /// may execute simultaneously. Version admission and per-key latching are
  /// handled by the DPR worker and the store underneath.
  void ExecuteBatch(Slice request, std::string* response);

  /// Typed entry for co-located clients (avoids one encode/decode round).
  void ExecuteBatch(const KvBatchRequest& request, KvBatchResponse* response);

  // --- ownership (paper §5.3) ---
  /// True if this worker currently owns the virtual partition.
  bool OwnsPartition(uint32_t partition) const;
  /// Renounces ownership locally; subsequent ops on the partition are
  /// rejected with kNotOwner. Call at a checkpoint boundary so ownership is
  /// static within versions.
  void DisownPartition(uint32_t partition);
  /// Starts serving the partition.
  void AdoptPartition(uint32_t partition);
  /// Number of partitions this worker currently owns.
  uint32_t OwnedPartitionCount() const;
  /// Installs migrated records under DPR admission (bypasses the ownership
  /// check: the partition is mid-transfer and deliberately unowned).
  Status InstallMigratedData(const KvBatchRequest& request,
                             KvBatchResponse* response);

  FasterStore* store() { return store_.get(); }
  DprWorker* dpr_worker() { return dpr_worker_.get(); }
  WorkerId id() const { return config_.id; }
  const std::string& address() const { return address_; }

 private:
  void RunOps(const KvBatchRequest& request, Version version,
              KvBatchResponse* response, bool check_ownership);
  void GcLoop();
  void ExecuteBatchInternal(const KvBatchRequest& request,
                            KvBatchResponse* response, bool check_ownership);
  void EventualTimerLoop();

  DFasterWorkerConfig config_;
  std::unique_ptr<FasterStore> store_;
  std::unique_ptr<DprWorker> dpr_worker_;  // kDpr mode only
  std::unique_ptr<RpcServer> server_;
  std::string address_;

  // Local view of the ownership map: partition -> owning worker.
  // Read lock-free on every request (relaxed); ownership transfers are
  // fenced by the migration protocol, not by these cells.
  std::vector<std::atomic<uint32_t>> owners_;

  // kEventual mode: uncoordinated checkpoint timer.
  std::thread eventual_timer_;
  // DPR-watermark-driven log garbage collection.
  std::thread gc_thread_;
  Version pending_compaction_ = kInvalidVersion;
  // relaxed flag: timer/gc loop-exit signal; thread join is the barrier.
  std::atomic<bool> stop_{true};
};

}  // namespace dpr

#endif  // DPR_DFASTER_WORKER_H_
