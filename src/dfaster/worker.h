#ifndef DPR_DFASTER_WORKER_H_
#define DPR_DFASTER_WORKER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dfaster/migration_channel.h"
#include "dfaster/protocol.h"
#include "dpr/worker.h"
#include "faster/faster_store.h"
#include "net/rpc.h"
#include "workload/ycsb.h"

namespace dpr {

/// Session-id namespace for migration-install traffic: install batches for
/// partition p carry session id kMigrationSessionBase + p, so their
/// dependency entries are attributable in traces and never collide with
/// client sessions.
constexpr uint64_t kMigrationSessionBase = 0xfeed0000;

/// Recoverability modes evaluated in the paper:
///  * kNone      — pure in-memory cache, no checkpoints ("No Chkpts");
///  * kEventual  — uncoordinated periodic checkpoints, no DPR ("No DPR");
///  * kDpr       — periodic checkpoints coordinated by the DPR protocol.
enum class RecoverabilityMode { kNone, kEventual, kDpr };

struct DFasterWorkerConfig {
  WorkerId id = 0;
  uint32_t num_workers = 1;
  /// A worker joining an existing cluster starts owning nothing; partitions
  /// are handed to it via ownership transfer (§5.3).
  bool start_empty = false;
  RecoverabilityMode mode = RecoverabilityMode::kDpr;
  FasterOptions faster;
  /// Used in kDpr mode (finder, checkpoint interval) and, for its
  /// checkpoint_interval_us, in kEventual mode too.
  DprWorkerOptions dpr;
  /// Log-compaction trigger: when the in-memory log exceeds this many bytes
  /// of reclaimable prefix, garbage-collect up to the DPR watermark
  /// (two-phase; only entries inside the guarantee are dropped). 0 disables.
  uint64_t compaction_threshold_bytes = 0;
};

/// One D-FASTER shard (paper §5.2): a FASTER instance with a DPR worker
/// wrapped around it, an RPC endpoint for remote execution, and a direct
/// entry point for co-located execution.
class DFasterWorker {
 public:
  explicit DFasterWorker(DFasterWorkerConfig config);
  ~DFasterWorker();

  DFasterWorker(const DFasterWorker&) = delete;
  DFasterWorker& operator=(const DFasterWorker&) = delete;

  /// Starts DPR participation and, if `server` is non-null, remote serving.
  Status Start(std::unique_ptr<RpcServer> server);
  void Stop();

  /// Executes an encoded KvBatchRequest; used by both the RPC handler and
  /// co-located clients (which call it directly, skipping the network).
  /// Safe under concurrent invocation: the TCP transport runs handlers on a
  /// shared executor pool, so two batches — even from the same connection —
  /// may execute simultaneously. Version admission and per-key latching are
  /// handled by the DPR worker and the store underneath.
  void ExecuteBatch(Slice request, std::string* response);

  /// Typed entry for co-located clients (avoids one encode/decode round).
  void ExecuteBatch(const KvBatchRequest& request, KvBatchResponse* response);

  // --- ownership (paper §5.3) ---
  /// True if this worker currently owns the virtual partition.
  bool OwnsPartition(uint32_t partition) const;
  /// Renounces ownership locally; subsequent ops on the partition are
  /// rejected with kNotOwner. Call at a checkpoint boundary so ownership is
  /// static within versions.
  void DisownPartition(uint32_t partition);
  /// Starts serving the partition.
  void AdoptPartition(uint32_t partition);
  /// Number of partitions this worker currently owns.
  uint32_t OwnedPartitionCount() const;
  /// Installs migrated records under DPR admission (bypasses the ownership
  /// check: the partition is mid-transfer and deliberately unowned). The
  /// request header's version + deps make the installing worker fast-forward
  /// to at least the source's version and record the dependency, so the
  /// installed data is entangled with the source's world-line and the DPR
  /// cut cannot cover one side of a migration without the other.
  Status InstallMigratedData(const KvBatchRequest& request,
                             KvBatchResponse* response);

  // --- live migration (cluster plane; DESIGN.md §4i) ---
  /// Opens the dual-ownership window for an owned partition: records the
  /// channel, then draws a checkpoint boundary (exclusive version-latch
  /// barrier) so every batch admitted before the seal has fully executed.
  /// From then on ops on the partition apply locally (the source stays
  /// authoritative until the flip) AND forward their effects through
  /// `channel` to the migration target.
  Status SealPartition(uint32_t partition,
                       std::shared_ptr<MigrationChannel> channel);
  /// Closes the dual-ownership window. `disown=true` completes the
  /// migration: ownership is dropped under the seal lock, so no op can
  /// execute locally-but-unforwarded after the target takes over.
  /// `disown=false` aborts the migration; the source keeps serving.
  void UnsealPartition(uint32_t partition, bool disown);
  bool IsPartitionSealed(uint32_t partition) const;
  /// Sticky flag, set when any forward or drain install through the seal
  /// channel fails: the target's copy can no longer be trusted and the
  /// migration driver must abort.
  bool SealForwardFailed(uint32_t partition) const;
  /// Pushes a snapshot of the partition's records through the seal channel
  /// in install batches of `chunk_ops` upserts. Each chunk re-reads values
  /// under the seal lock, so chunks and concurrent forwarded writes reach
  /// the target in an order consistent with source apply order (upserts do
  /// not commute). `*max_installed` returns the largest target version any
  /// chunk executed in — the commit-barrier target — or kInvalidVersion.
  Status DrainSealedPartition(uint32_t partition, size_t chunk_ops,
                              Version* max_installed);

  FasterStore* store() { return store_.get(); }
  DprWorker* dpr_worker() { return dpr_worker_.get(); }
  WorkerId id() const { return config_.id; }
  const std::string& address() const { return address_; }

 private:
  /// Per-partition dual-ownership window state. `sealed` is the lock-free
  /// fast-path gate; everything else happens under `mu`. In kDpr mode a
  /// batch that loads sealed=false is safe to apply locally without the
  /// lock: it holds the shared version latch, so SealPartition's exclusive-
  /// latch barrier cannot complete (and the drain cannot start) until the
  /// batch ends.
  struct SealState {
    Mutex mu{LockRank::kMigrationSeal, "dfaster.migration_seal"};
    std::shared_ptr<MigrationChannel> channel GUARDED_BY(mu);
    // release-stored under mu / acquire-loaded lock-free on every op.
    std::atomic<bool> sealed{false};
    // relaxed: sticky failure flag; the driver polls it between phases.
    std::atomic<bool> failed{false};
  };

  void RunOps(const KvBatchRequest& request, Version version,
              KvBatchResponse* response, bool check_ownership,
              DependencySet* forward_deps);
  void ApplyOp(FasterStore::Session* session, const KvOp& op, KvOpResult* out);
  /// Header for install traffic on `partition`: current world-line, current
  /// version v, deps {self: v}. The target fast-forwards to >= v and records
  /// the dependency downward, keeping the version clock invariant.
  DprRequestHeader MakeInstallHeader(uint32_t partition) const;
  void GcLoop();
  void ExecuteBatchInternal(const KvBatchRequest& request,
                            KvBatchResponse* response, bool check_ownership);
  void EventualTimerLoop();
  /// Samples the live cadence signals for this shard: store dirty bytes,
  /// DPR watermark, exception-list and fsync-scheduler gauges.
  CkptSignals CollectCkptSignals() const;

  DFasterWorkerConfig config_;
  std::unique_ptr<FasterStore> store_;
  std::unique_ptr<DprWorker> dpr_worker_;  // kDpr mode only
  std::unique_ptr<RpcServer> server_;
  std::string address_;

  // Local view of the ownership map: partition -> owning worker.
  //
  // Memory-ordering invariant (live migration): loads are acquire, stores
  // are release. AdoptPartition's release store at the target publishes
  // every migrated-record installation that happened-before it — the driver
  // flips ownership only after all install rendezvous returned on the flip
  // thread — so a request thread whose acquire load observes "owned" also
  // observes the installed records. On the source side, the completed-
  // migration disown happens under the partition's seal lock
  // (UnsealPartition) so no op can apply locally-but-unforwarded after the
  // target took over.
  std::vector<std::atomic<uint32_t>> owners_;
  // Dual-ownership window state, one slot per partition (slots themselves
  // are const after construction).
  std::vector<std::unique_ptr<SealState>> seals_;

  // kEventual mode: uncoordinated checkpoint timer.
  std::thread eventual_timer_;
  // DPR-watermark-driven log garbage collection.
  std::thread gc_thread_;
  Version pending_compaction_ = kInvalidVersion;
  // relaxed flag: timer/gc loop-exit signal; thread join is the barrier.
  std::atomic<bool> stop_{true};
};

}  // namespace dpr

#endif  // DPR_DFASTER_WORKER_H_
