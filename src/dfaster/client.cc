#include "dfaster/client.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {
constexpr int kMaxBatchRetries = 400;     // paired with 1 ms backoff: covers
constexpr uint64_t kRetryDelayUs = 1000;  // several recovery windows

struct ClientMetrics {
  ShardedHistogram* batch_fill;  // ops per dispatched batch (vs. batch_size)
  Counter* batches;
  Counter* flush_dispatches;  // partial batches forced out by Flush()
};

const ClientMetrics& Metrics() {
  static const ClientMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return ClientMetrics{r.histogram("dfaster.client.batch_fill"),
                         r.counter("dfaster.client.batches"),
                         r.counter("dfaster.client.flush_dispatches")};
  }();
  return m;
}

}  // namespace

DFasterClient::DFasterClient(DFasterClientConfig config)
    : config_(std::move(config)),
      routes_(YcsbWorkload::kNumPartitions) {
  for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
    routes_[vp] = YcsbWorkload::DefaultOwner(vp, config_.num_workers);
  }
  RefreshOwnership();
}

DFasterClient::~DFasterClient() {
  std::thread timer;
  {
    MutexLock guard(timer_mu_);
    timer_stop_ = true;
    timer.swap(timer_thread_);
  }
  timer_cv_.NotifyAll();
  if (timer.joinable()) timer.join();
}

void DFasterClient::RunAfter(uint64_t delay_us, std::function<void()> fn) {
  {
    MutexLock guard(timer_mu_);
    if (!timer_thread_.joinable()) {
      timer_thread_ = std::thread([this] { TimerLoop(); });
    }
    timer_queue_.push_back({NowMicros() + delay_us, std::move(fn)});
  }
  timer_cv_.NotifyAll();
}

void DFasterClient::TimerLoop() {
  for (;;) {
    std::function<void()> ready;
    {
      MutexLock guard(timer_mu_);
      for (;;) {
        if (timer_stop_) return;
        if (timer_queue_.empty()) {
          timer_cv_.Wait(timer_mu_, [this]() REQUIRES(timer_mu_) {
            return timer_stop_ || !timer_queue_.empty();
          });
          continue;
        }
        auto it = std::min_element(timer_queue_.begin(), timer_queue_.end(),
                                   [](const DelayedTask& a,
                                      const DelayedTask& b) {
                                     return a.due_us < b.due_us;
                                   });
        const uint64_t now = NowMicros();
        if (it->due_us > now) {
          timer_cv_.WaitFor(timer_mu_,
                            std::chrono::microseconds(it->due_us - now));
          continue;
        }
        ready = std::move(it->fn);
        timer_queue_.erase(it);
        break;
      }
    }
    ready();  // outside the lock: tasks resend batches / take client locks
  }
}

WorkerId DFasterClient::RouteOf(uint64_t key) const {
  MutexLock guard(routes_mu_);
  return routes_[YcsbWorkload::PartitionOf(key)];
}

void DFasterClient::RefreshOwnership() {
  if (config_.metadata == nullptr) return;
  const auto ownership = config_.metadata->GetOwnership();
  MutexLock guard(routes_mu_);
  for (const auto& [vp, worker] : ownership) {
    if (vp < routes_.size()) routes_[vp] = worker;
  }
}

void DFasterClient::AddRemoteWorker(WorkerId id,
                                    std::unique_ptr<RpcConnection> conn) {
  MutexLock guard(endpoints_mu_);
  remote_[id] = std::move(conn);
}

void DFasterClient::AddLocalWorker(DFasterWorker* worker) {
  MutexLock guard(endpoints_mu_);
  local_[worker->id()] = worker;
}

RpcConnection* DFasterClient::Connection(WorkerId worker) {
  MutexLock guard(endpoints_mu_);
  auto it = remote_.find(worker);
  if (it != remote_.end()) return it->second.get();
  if (!config_.connect_worker) return nullptr;
  // Lazy connect (elastic membership): the worker joined after this client
  // was built. Resolved under the endpoint lock so concurrent request
  // threads produce one connection, not one each.
  // dprlint: allowed(callback-lock) connect_worker only dials a transport
  // endpoint; it takes no DPR locks, and holding endpoints_mu_ is what
  // dedups concurrent dials.
  std::unique_ptr<RpcConnection> conn = config_.connect_worker(worker);
  if (conn == nullptr) return nullptr;
  return (remote_[worker] = std::move(conn)).get();
}

DFasterWorker* DFasterClient::Local(WorkerId worker) const {
  MutexLock guard(endpoints_mu_);
  auto it = local_.find(worker);
  return it == local_.end() ? nullptr : it->second;
}

std::vector<WorkerId> DFasterClient::KnownWorkers() const {
  std::vector<WorkerId> ids;
  {
    MutexLock guard(endpoints_mu_);
    for (const auto& [id, conn] : remote_) ids.push_back(id);
    for (const auto& [id, w] : local_) ids.push_back(id);
  }
  {
    MutexLock guard(routes_mu_);
    ids.insert(ids.end(), routes_.begin(), routes_.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::unique_ptr<DFasterClient::Session> DFasterClient::NewSession(
    uint64_t session_id) {
  return std::unique_ptr<Session>(new Session(this, session_id));
}

DFasterClient::Session::Session(DFasterClient* client, uint64_t session_id)
    : client_(client), dpr_session_(session_id) {}

DFasterClient::Session::~Session() {
  Status s = WaitForAll();
  if (!s.ok()) {
    DPR_WARN("session %llu destroyed with unresolved ops: %s",
             static_cast<unsigned long long>(dpr_session_.session_id()),
             s.ToString().c_str());
  }
}

void DFasterClient::Session::Read(uint64_t key, OpCallback callback) {
  Issue(KvOp{KvOp::Type::kRead, key, 0}, std::move(callback));
}

void DFasterClient::Session::Upsert(uint64_t key, uint64_t value,
                                    OpCallback callback) {
  Issue(KvOp{KvOp::Type::kUpsert, key, value}, std::move(callback));
}

void DFasterClient::Session::Rmw(uint64_t key, uint64_t delta,
                                 OpCallback callback) {
  Issue(KvOp{KvOp::Type::kRmw, key, delta}, std::move(callback));
}

void DFasterClient::Session::Delete(uint64_t key, OpCallback callback) {
  Issue(KvOp{KvOp::Type::kDelete, key, 0}, std::move(callback));
}

void DFasterClient::Session::Issue(KvOp op, OpCallback callback) {
  const WorkerId worker = client_->RouteOf(op.key);
  PendingBatch& batch = building_[worker];
  batch.ops.push_back(op);
  batch.callbacks.push_back(std::move(callback));
  ++ops_issued_;
  if (batch.ops.size() >= client_->config_.batch_size) Dispatch(worker);
}

void DFasterClient::Session::Flush() {
  for (auto& [worker, batch] : building_) {
    if (!batch.ops.empty()) {
      Metrics().flush_dispatches->Add();
      Dispatch(worker);
    }
  }
}

void DFasterClient::Session::Dispatch(WorkerId worker) {
  PendingBatch batch = std::move(building_[worker]);
  building_[worker].ops.clear();
  building_[worker].callbacks.clear();
  const uint64_t n = batch.ops.size();
  Metrics().batches->Add();
  Metrics().batch_fill->Record(n);
  // Windowing: block while w outstanding ops are in flight (paper §7.1).
  {
    MutexLock lock(mu_);
    window_cv_.Wait(mu_, [&]() REQUIRES(mu_) {
      return outstanding_ + n <= client_->config_.window;
    });
    outstanding_ += n;
  }
  SendBatch(worker, std::move(batch));
}

void DFasterClient::Session::SendBatch(WorkerId worker, PendingBatch batch) {
  if (client_->Local(worker) != nullptr) {
    ExecuteLocal(worker, std::move(batch));
    return;
  }
  const uint64_t start = dpr_session_.IssuePending(worker, batch.ops.size());
  SendRemote(worker, std::make_shared<PendingBatch>(std::move(batch)), start,
             0);
}

void DFasterClient::Session::FinishBatch(WorkerId /*worker*/,
                                         PendingBatch batch,
                                         const KvBatchResponse& resp) {
  const bool ok =
      resp.header.status == DprResponseHeader::BatchStatus::kOk &&
      resp.results.size() == batch.ops.size();
  // Ownership may have moved (paper 5.3): refresh the routing cache and
  // transparently re-route rejected ops; the key is momentarily unowned
  // during a transfer, so bounded retries are expected.
  std::map<WorkerId, PendingBatch> reroutes;
  uint64_t finished = 0;
  if (ok && batch.reroute_attempts < client_->config_.max_reroute_attempts) {
    bool any_not_owner = false;
    for (const KvOpResult& r : resp.results) {
      if (r.result == KvResult::kNotOwner) {
        any_not_owner = true;
        break;
      }
    }
    if (any_not_owner) {
      client_->RefreshOwnership();
      for (size_t i = 0; i < batch.ops.size(); ++i) {
        if (resp.results[i].result == KvResult::kNotOwner) {
          const WorkerId target = client_->RouteOf(batch.ops[i].key);
          PendingBatch& rb = reroutes[target];
          rb.reroute_attempts = batch.reroute_attempts + 1;
          rb.ops.push_back(batch.ops[i]);
          rb.callbacks.push_back(std::move(batch.callbacks[i]));
        } else {
          if (batch.callbacks[i]) {
            batch.callbacks[i](resp.results[i].result, resp.results[i].value);
          }
          ++finished;
        }
      }
      {
        // Notify under mu_: ~Session's WaitForAll may destroy the cv the
        // instant its predicate holds, so the broadcast must complete before
        // the waiter can re-acquire the mutex and return.
        MutexLock guard(mu_);
        outstanding_ -= finished;
        window_cv_.NotifyAll();
      }
      // Back off slightly: mid-transfer the partition has no owner yet.
      if (!reroutes.empty()) SleepMicros(500);
      for (auto& [target, rb] : reroutes) {
        SendBatch(target, std::move(rb));
      }
      return;
    }
  }
  for (size_t i = 0; i < batch.callbacks.size(); ++i) {
    if (!batch.callbacks[i]) continue;
    if (ok) {
      batch.callbacks[i](resp.results[i].result, resp.results[i].value);
    } else {
      batch.callbacks[i](KvResult::kError, 0);
    }
  }
  if (!ok) ops_failed_.fetch_add(batch.ops.size(), std::memory_order_relaxed);
  {
    // Notify under mu_ (see above): keeps the cv alive across the broadcast
    // when ~Session is waiting on it.
    MutexLock guard(mu_);
    outstanding_ -= batch.ops.size();
    window_cv_.NotifyAll();
  }
}

void DFasterClient::Session::ExecuteLocal(WorkerId worker,
                                          PendingBatch batch) {
  DFasterWorker* target = client_->Local(worker);
  KvBatchRequest req;
  req.ops = batch.ops;
  KvBatchResponse resp;
  for (int attempt = 0;; ++attempt) {
    req.header = dpr_session_.MakeHeader();
    target->ExecuteBatch(req, &resp);
    if (resp.header.status != DprResponseHeader::BatchStatus::kRetryLater ||
        attempt >= kMaxBatchRetries) {
      break;
    }
    SleepMicros(kRetryDelayUs);
  }
  if (resp.header.status == DprResponseHeader::BatchStatus::kOk) {
    dpr_session_.RecordBatch(worker, batch.ops.size(), resp.header);
  } else {
    // Failed batch: ops had no effect; record them as vacuously-committed
    // no-ops and remember the observed world-line.
    DprResponseHeader vacuous;
    vacuous.executed_version = kInvalidVersion;
    dpr_session_.RecordBatch(worker, batch.ops.size(), vacuous);
    dpr_session_.ObserveWatermark(worker, resp.header);
  }
  FinishBatch(worker, batch, resp);
}

void DFasterClient::Session::SendRemote(WorkerId worker,
                                        std::shared_ptr<PendingBatch> batch,
                                        uint64_t start_seqno, int attempt) {
  RpcConnection* conn = client_->Connection(worker);
  if (conn == nullptr) {
    KvBatchResponse resp;
    resp.header.status = DprResponseHeader::BatchStatus::kRetryLater;
    DprResponseHeader vacuous;
    dpr_session_.ResolvePending(start_seqno, vacuous);
    FinishBatch(worker, *batch, resp);
    return;
  }
  KvBatchRequest req;
  req.header = dpr_session_.MakeHeader();
  req.ops = batch->ops;
  std::string encoded;
  req.EncodeTo(&encoded);
  conn->CallAsync(
      std::move(encoded),
      [this, worker, batch, start_seqno, attempt](Status s, Slice payload) {
        OnRemoteResponse(worker, batch, start_seqno, attempt, std::move(s),
                         payload);
      });
}

void DFasterClient::Session::OnRemoteResponse(
    WorkerId worker, std::shared_ptr<PendingBatch> batch, uint64_t start_seqno,
    int attempt, Status transport, Slice payload) {
  KvBatchResponse resp;
  if (transport.ok() && resp.DecodeFrom(payload)) {
    if (resp.header.status == DprResponseHeader::BatchStatus::kRetryLater &&
        attempt < kMaxBatchRetries) {
      // Worker mid-recovery (or behind our world-line): back off and resend
      // with a refreshed header. The ops keep their seqnos. The backoff is
      // scheduled, never slept inline: this callback runs on the transport's
      // delivery thread, and with the io_uring client that one thread
      // serves every connection in the process — sleeping here would stall
      // all client traffic for the duration (~Session keeps `this` alive
      // while the batch is outstanding).
      client_->RunAfter(kRetryDelayUs,
                        [this, worker, batch = std::move(batch), start_seqno,
                         attempt]() mutable {
                          SendRemote(worker, std::move(batch), start_seqno,
                                     attempt + 1);
                        });
      return;
    }
    if (resp.header.status == DprResponseHeader::BatchStatus::kOk) {
      dpr_session_.ResolvePending(start_seqno, resp.header);
      FinishBatch(worker, *batch, resp);
      return;
    }
    // World-line shift (or retries exhausted): the batch never executed.
    DprResponseHeader vacuous;
    dpr_session_.ResolvePending(start_seqno, vacuous);
    dpr_session_.ObserveWatermark(worker, resp.header);
    FinishBatch(worker, *batch, resp);
    return;
  }
  // Transport failure.
  DprResponseHeader vacuous;
  dpr_session_.ResolvePending(start_seqno, vacuous);
  KvBatchResponse failed;
  failed.header.status = DprResponseHeader::BatchStatus::kRetryLater;
  FinishBatch(worker, *batch, failed);
}

Status DFasterClient::Session::WaitForAll(uint64_t timeout_ms) {
  Flush();
  MutexLock lock(mu_);
  const bool done = window_cv_.WaitFor(
      mu_, std::chrono::milliseconds(timeout_ms),
      [&]() REQUIRES(mu_) { return outstanding_ == 0; });
  return done ? Status::OK() : Status::TimedOut("ops still outstanding");
}

void DFasterClient::Session::SendPing(WorkerId worker) {
  DFasterWorker* local = client_->Local(worker);
  if (local != nullptr) {
    KvBatchRequest req;
    req.header = dpr_session_.MakeHeader();
    KvBatchResponse resp;
    local->ExecuteBatch(req, &resp);
    dpr_session_.ObserveWatermark(worker, resp.header);
    return;
  }
  RpcConnection* conn = client_->Connection(worker);
  if (conn == nullptr) return;
  KvBatchRequest req;
  req.header = dpr_session_.MakeHeader();
  std::string encoded;
  req.EncodeTo(&encoded);
  std::string response;
  if (conn->Call(encoded, &response).ok()) {
    KvBatchResponse resp;
    if (resp.DecodeFrom(response)) {
      dpr_session_.ObserveWatermark(worker, resp.header);
    }
  }
}

Status DFasterClient::Session::WaitForCommit(uint64_t timeout_ms) {
  DPR_RETURN_NOT_OK(WaitForAll(timeout_ms));
  const uint64_t target = dpr_session_.next_seqno();
  const Stopwatch timer;
  for (;;) {
    const DprSession::CommitPoint point = dpr_session_.GetCommitPoint();
    if (point.prefix_end >= target && point.excluded.empty()) {
      return Status::OK();
    }
    if (needs_failure_handling()) {
      return Status::Aborted("failure observed; call RecoverFromFailure");
    }
    if (timer.ElapsedMillis() > timeout_ms) {
      return Status::TimedOut("commit did not arrive in time");
    }
    // Commit notifications piggyback on responses; ping the workers to
    // learn the latest watermarks (paper §2: sessions may wait for commit).
    // KnownWorkers (not config_.num_workers): the cluster may have grown
    // since this client was built, and a dependency on a joined worker only
    // clears once its watermark is observed.
    for (WorkerId w : client_->KnownWorkers()) {
      SendPing(w);
    }
    SleepMicros(2000);
  }
}

Status DFasterClient::Session::RecoverFromFailure(
    DprSession::CommitPoint* survivors) {
  ClusterManager* manager = client_->config_.cluster_manager;
  if (manager == nullptr) {
    return Status::NotSupported("no cluster manager configured");
  }
  DPR_RETURN_NOT_OK(WaitForAll());
  const WorldLine target = dpr_session_.observed_world_line();
  // Resolve world-lines one at a time in case several failures stacked up.
  for (WorldLine wl = dpr_session_.world_line() + 1; wl <= target; ++wl) {
    DprCut cut;
    if (!manager->GetRecoveryCut(wl, &cut)) {
      return Status::Unavailable("recovery cut not yet published");
    }
    const DprSession::CommitPoint point = dpr_session_.HandleFailure(wl, cut);
    if (survivors != nullptr) *survivors = point;
  }
  return Status::OK();
}

}  // namespace dpr
