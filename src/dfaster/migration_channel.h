#ifndef DPR_DFASTER_MIGRATION_CHANNEL_H_
#define DPR_DFASTER_MIGRATION_CHANNEL_H_

#include <memory>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/sync.h"
#include "dfaster/protocol.h"
#include "net/rpc.h"

namespace dpr {

class DFasterWorker;

/// Transport-agnostic path from a sealed source partition to its migration
/// target (cluster plane; DESIGN.md §4i). The source worker pushes two kinds
/// of traffic through it during the dual-ownership window: per-op forwards of
/// new writes, and bulk drain chunks of pre-existing records. Both are
/// install batches (KvBatchRequest::install) that bypass the target's
/// ownership check.
///
/// Install() is synchronous and is called with the source worker's version
/// latch held *shared* plus the partition's seal lock. Implementations must
/// therefore never run the target's admission on the calling thread when the
/// target is in-process: the two workers' version latches share a lock rank,
/// and equal-rank nesting is an ordering bug the runtime rank checker aborts
/// on. LocalMigrationChannel hops to a dedicated installer thread;
/// RpcMigrationChannel crosses a connection, so the target executes on its
/// transport's executor pool.
class MigrationChannel {
 public:
  virtual ~MigrationChannel() = default;

  /// Worker id of the migration target, used for dependency-set entries.
  virtual WorkerId target() const = 0;

  /// Executes `request` at the target as a migration-install batch.
  /// Transport-level failure returns non-OK; a DPR-level rejection (e.g. the
  /// target shifted world-lines) surfaces in `response->header.status`.
  virtual Status Install(const KvBatchRequest& request,
                         KvBatchResponse* response) = 0;
};

/// In-process channel: a dedicated installer thread executes each batch
/// directly on the target worker via a stack rendezvous. Used by tests and
/// by migrations between co-located workers.
class LocalMigrationChannel : public MigrationChannel {
 public:
  explicit LocalMigrationChannel(DFasterWorker* target_worker);
  ~LocalMigrationChannel() override;

  WorkerId target() const override;
  Status Install(const KvBatchRequest& request,
                 KvBatchResponse* response) override;

 private:
  struct Job {
    const KvBatchRequest* request = nullptr;
    KvBatchResponse* response = nullptr;
    Status status;
    bool done = false;
  };

  void InstallerLoop();

  DFasterWorker* const target_worker_;
  Mutex mu_{LockRank::kMigrationChannel, "dfaster.migration_channel"};
  CondVar cv_;
  Job* job_ GUARDED_BY(mu_) = nullptr;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread installer_;
};

/// Wire channel: encodes install batches and sends them over an
/// RpcConnection (in-memory or TCP), so harness migrations exercise the same
/// epoll transport client traffic uses. The target's RPC dispatch routes
/// install-flagged batches around the ownership check.
class RpcMigrationChannel : public MigrationChannel {
 public:
  RpcMigrationChannel(WorkerId target_id,
                      std::unique_ptr<RpcConnection> connection)
      : target_id_(target_id), connection_(std::move(connection)) {}

  WorkerId target() const override { return target_id_; }
  Status Install(const KvBatchRequest& request,
                 KvBatchResponse* response) override;

 private:
  const WorkerId target_id_;
  // Serializes calls so installs arrive at the target in submission order
  // (the seal lock already serializes callers per partition; this guards the
  // channel if one is ever shared).
  Mutex mu_{LockRank::kMigrationChannel, "dfaster.migration_rpc"};
  std::unique_ptr<RpcConnection> connection_ PT_GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_DFASTER_MIGRATION_CHANNEL_H_
