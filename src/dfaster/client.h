#ifndef DPR_DFASTER_CLIENT_H_
#define DPR_DFASTER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "dfaster/protocol.h"
#include "dfaster/worker.h"
#include "dpr/cluster_manager.h"
#include "dpr/session.h"
#include "metadata/metadata_store.h"
#include "net/rpc.h"

namespace dpr {

struct DFasterClientConfig {
  uint32_t num_workers = 1;
  /// b: ops accumulated per worker before a batch is sent (paper §7.1).
  uint32_t batch_size = 64;
  /// w: max outstanding (sent, unresponded) ops; issuing blocks beyond it.
  uint32_t window = 1024;
  /// Recovery-info source for failure handling (in-process deployments).
  ClusterManager* cluster_manager = nullptr;
  /// Ownership-table source; when set, kNotOwner responses trigger a cache
  /// refresh and transparent re-routing of the affected ops (paper 5.3).
  MetadataStore* metadata = nullptr;
  /// Re-route attempts per op before reporting kNotOwner to the caller.
  int max_reroute_attempts = 8;
  /// Elastic membership (DESIGN.md §4i): opens a connection to a worker the
  /// client has no endpoint for yet. When the ownership table routes a key
  /// to an unknown worker (it joined after this client was created), the
  /// client resolves the endpoint lazily instead of failing the op. May
  /// return nullptr for an id that does not exist (yet).
  std::function<std::unique_ptr<RpcConnection>(WorkerId)> connect_worker;
};

/// Client-side D-FASTER library: owns the routing table (hash partitioning,
/// §5.3), connections to remote workers, and direct pointers to co-located
/// workers (shared-memory execution, §5.2). Thread-safe; sessions are not —
/// use one session per application thread.
class DFasterClient {
 public:
  explicit DFasterClient(DFasterClientConfig config);
  ~DFasterClient();

  void AddRemoteWorker(WorkerId id, std::unique_ptr<RpcConnection> conn);
  void AddLocalWorker(DFasterWorker* worker);

  class Session;
  std::unique_ptr<Session> NewSession(uint64_t session_id);

  /// Worker currently routed for `key` per the cached ownership view.
  WorkerId RouteOf(uint64_t key) const;

  /// Re-reads the ownership table from the metadata service (clients cache
  /// it and only consult the service when changes occur, paper 5.3).
  void RefreshOwnership();

  /// Every worker this client can currently reach or route to: union of the
  /// endpoint registry and the routing table. Grows as ownership moves to
  /// workers that joined after the client was created.
  std::vector<WorkerId> KnownWorkers() const;

  const DFasterClientConfig& config() const { return config_; }

 private:
  friend class Session;

  /// Connection for `worker`, resolving lazily through connect_worker when
  /// the endpoint is unknown. nullptr when unresolvable. The returned
  /// pointer stays valid for the client's lifetime (endpoints are never
  /// removed).
  RpcConnection* Connection(WorkerId worker);
  DFasterWorker* Local(WorkerId worker) const;

  /// Runs `fn` after `delay_us` on the client's timer thread (started
  /// lazily). Transport response callbacks must not block their delivery
  /// thread — with the io_uring client every connection in the process
  /// shares one loop thread, so a SleepMicros inside a callback stalls all
  /// client traffic (including the finder reports recovery depends on).
  /// Batch retries schedule themselves here instead.
  void RunAfter(uint64_t delay_us, std::function<void()> fn);

  DFasterClientConfig config_;
  // Endpoint registry: connections and co-located workers, keyed by id.
  // Guarded so lazy connects racing request threads are safe; entries are
  // never removed, so raw pointers handed out stay valid.
  mutable Mutex endpoints_mu_{LockRank::kClientEndpoints,
                              "dfaster.client.endpoints"};
  std::map<WorkerId, std::unique_ptr<RpcConnection>> remote_
      GUARDED_BY(endpoints_mu_);
  std::map<WorkerId, DFasterWorker*> local_ GUARDED_BY(endpoints_mu_);
  // Leaf lock: guards only the cached routing table.
  mutable Mutex routes_mu_{LockRank::kClientWindow, "dfaster.client.routes"};
  std::vector<WorkerId> routes_ GUARDED_BY(routes_mu_);  // partition -> worker

  void TimerLoop();

  struct DelayedTask {
    uint64_t due_us;
    std::function<void()> fn;
  };
  mutable Mutex timer_mu_{LockRank::kClientTimer, "dfaster.client.timer"};
  CondVar timer_cv_;
  std::vector<DelayedTask> timer_queue_ GUARDED_BY(timer_mu_);
  bool timer_stop_ GUARDED_BY(timer_mu_) = false;
  std::thread timer_thread_ GUARDED_BY(timer_mu_);
};

/// A client session: batched, windowed, asynchronous single-key operations
/// with DPR tracking (libDPR client side). Local keys execute synchronously
/// through shared memory; remote keys go PENDING and resolve via relaxed DPR.
class DFasterClient::Session {
 public:
  using OpCallback = std::function<void(KvResult, uint64_t value)>;

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Async ops; `callback` (optional) fires on completion, possibly on a
  /// transport thread. Ops buffer until batch_size accumulates for the
  /// target worker; call Flush() to force dispatch of partial batches.
  void Read(uint64_t key, OpCallback callback = nullptr);
  void Upsert(uint64_t key, uint64_t value, OpCallback callback = nullptr);
  void Rmw(uint64_t key, uint64_t delta, OpCallback callback = nullptr);
  void Delete(uint64_t key, OpCallback callback = nullptr);

  /// Dispatches all partially-filled batches.
  void Flush();

  /// Blocks until every dispatched op has a response (CompletePending).
  Status WaitForAll(uint64_t timeout_ms = 30000);

  /// Blocks until everything issued so far is covered by a DPR guarantee
  /// (the traditional durable-store experience, paper §2).
  Status WaitForCommit(uint64_t timeout_ms = 30000);

  /// True once a response revealed a failure (newer world-line).
  bool needs_failure_handling() const {
    return dpr_session_.needs_failure_handling();
  }

  /// Fetches the recovery cut from the cluster manager, computes the
  /// surviving prefix (returned via `survivors`), and moves the session onto
  /// the new world-line so it can continue operating.
  Status RecoverFromFailure(DprSession::CommitPoint* survivors);

  DprSession& dpr() { return dpr_session_; }

  uint64_t ops_issued() const { return ops_issued_; }
  uint64_t ops_failed() const {
    return ops_failed_.load(std::memory_order_relaxed);
  }

 private:
  friend class DFasterClient;
  Session(DFasterClient* client, uint64_t session_id);

  struct PendingBatch {
    std::vector<KvOp> ops;
    std::vector<OpCallback> callbacks;
    int reroute_attempts = 0;
  };

  void Issue(KvOp op, OpCallback callback);
  void Dispatch(WorkerId worker);
  // Sends a batch whose window slots are already reserved.
  void SendBatch(WorkerId worker, PendingBatch batch);
  void ExecuteLocal(WorkerId worker, PendingBatch batch);
  void SendRemote(WorkerId worker, std::shared_ptr<PendingBatch> batch,
                  uint64_t start_seqno, int attempt);
  void OnRemoteResponse(WorkerId worker, std::shared_ptr<PendingBatch> batch,
                        uint64_t start_seqno, int attempt, Status transport,
                        Slice payload);
  void FinishBatch(WorkerId worker, PendingBatch batch,
                   const KvBatchResponse& resp);
  void SendPing(WorkerId worker);

  DFasterClient* client_;
  DprSession dpr_session_;
  std::map<WorkerId, PendingBatch> building_;  // app-thread only
  uint64_t ops_issued_ = 0;
  // relaxed: failure stat bumped on transport callbacks, read for reporting.
  std::atomic<uint64_t> ops_failed_{0};

  Mutex mu_{LockRank::kClientWindow, "dfaster.client.window"};
  CondVar window_cv_;
  uint64_t outstanding_ GUARDED_BY(mu_) = 0;
};

}  // namespace dpr

#endif  // DPR_DFASTER_CLIENT_H_
