#include "dfaster/protocol.h"

#include "common/coding.h"

namespace dpr {

void KvBatchRequest::EncodeTo(std::string* dst) const {
  header.EncodeTo(dst);
  dst->push_back(install ? 1 : 0);
  PutFixed32(dst, static_cast<uint32_t>(ops.size()));
  for (const KvOp& op : ops) {
    dst->push_back(static_cast<char>(op.type));
    PutFixed64(dst, op.key);
    PutFixed64(dst, op.value);
  }
}

bool KvBatchRequest::DecodeFrom(Slice input) {
  size_t consumed = 0;
  if (!header.DecodeFrom(input, &consumed)) return false;
  Decoder dec(Slice(input.data() + consumed, input.size() - consumed));
  uint8_t flags;
  if (!dec.GetBytes(&flags, 1)) return false;
  install = (flags & 1) != 0;
  uint32_t n;
  if (!dec.GetFixed32(&n)) return false;
  // Each op costs 17 wire bytes; reject counts the payload cannot hold
  // (otherwise a hostile count triggers a huge allocation).
  if (n > dec.remaining() / 17) return false;
  ops.clear();
  ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KvOp op;
    uint8_t type;
    if (!dec.GetBytes(&type, 1) || !dec.GetFixed64(&op.key) ||
        !dec.GetFixed64(&op.value)) {
      return false;
    }
    op.type = static_cast<KvOp::Type>(type);
    ops.push_back(op);
  }
  return true;
}

void KvBatchResponse::EncodeTo(std::string* dst) const {
  header.EncodeTo(dst);
  PutFixed32(dst, static_cast<uint32_t>(results.size()));
  for (const KvOpResult& r : results) {
    dst->push_back(static_cast<char>(r.result));
    PutFixed64(dst, r.value);
  }
}

bool KvBatchResponse::DecodeFrom(Slice input) {
  size_t consumed = 0;
  if (!header.DecodeFrom(input, &consumed)) return false;
  Decoder dec(Slice(input.data() + consumed, input.size() - consumed));
  uint32_t n;
  if (!dec.GetFixed32(&n)) return false;
  if (n > dec.remaining() / 9) return false;  // 9 wire bytes per result
  results.clear();
  results.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KvOpResult r;
    uint8_t result;
    if (!dec.GetBytes(&result, 1) || !dec.GetFixed64(&r.value)) return false;
    r.result = static_cast<KvResult>(result);
    results.push_back(r);
  }
  return true;
}

}  // namespace dpr
