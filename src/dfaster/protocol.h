#ifndef DPR_DFASTER_PROTOCOL_H_
#define DPR_DFASTER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "dpr/header.h"

namespace dpr {

/// One key-value operation inside a D-FASTER batch.
struct KvOp {
  enum class Type : uint8_t { kRead = 1, kUpsert = 2, kRmw = 3, kDelete = 4 };
  Type type = Type::kRead;
  uint64_t key = 0;
  uint64_t value = 0;  // upsert value / RMW delta
};

/// Per-op result codes (kept to one byte on the wire).
enum class KvResult : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kNotOwner = 2,
  kError = 3,
};

struct KvOpResult {
  KvResult result = KvResult::kOk;
  uint64_t value = 0;
};

/// Request batch: DPR header, a flags byte, then the op list. An empty op
/// list is a valid "ping" used to learn commit watermarks.
///
/// `install` marks the batch as a migration-install batch (cluster plane):
/// the receiving worker applies the ops to a partition it does not (yet) own,
/// skipping the per-op ownership check. Install batches are only ever sent
/// worker-to-worker by the migration driver, never by clients.
struct KvBatchRequest {
  DprRequestHeader header;
  bool install = false;
  std::vector<KvOp> ops;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input);
};

/// Response batch: DPR response header followed by per-op results (empty on
/// rejection).
struct KvBatchResponse {
  DprResponseHeader header;
  std::vector<KvOpResult> results;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input);
};

}  // namespace dpr

#endif  // DPR_DFASTER_PROTOCOL_H_
