#include "dfaster/migration_channel.h"

#include "dfaster/worker.h"

namespace dpr {

LocalMigrationChannel::LocalMigrationChannel(DFasterWorker* target_worker)
    : target_worker_(target_worker) {
  installer_ = std::thread([this] { InstallerLoop(); });
}

LocalMigrationChannel::~LocalMigrationChannel() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (installer_.joinable()) installer_.join();
}

WorkerId LocalMigrationChannel::target() const {
  return target_worker_->id();
}

Status LocalMigrationChannel::Install(const KvBatchRequest& request,
                                      KvBatchResponse* response) {
  Job job;
  job.request = &request;
  job.response = response;
  MutexLock lock(mu_);
  cv_.Wait(mu_, [this]() REQUIRES(mu_) { return stop_ || job_ == nullptr; });
  if (stop_) return Status::Unavailable("migration channel stopped");
  job_ = &job;
  cv_.NotifyAll();
  // The job lives on this stack: wait until the installer is done touching
  // it even if the channel is stopped concurrently (InstallerLoop fails any
  // job it cannot run before exiting).
  cv_.Wait(mu_, [&job]() { return job.done; });
  return job.status;
}

void LocalMigrationChannel::InstallerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_,
               [this]() REQUIRES(mu_) { return stop_ || job_ != nullptr; });
      job = job_;
      if (job == nullptr) return;  // stop with no pending work
      if (stop_) {
        job->status = Status::Unavailable("migration channel stopped");
        job->done = true;
        job_ = nullptr;
        cv_.NotifyAll();
        return;
      }
    }
    // Execute with no channel lock held: the target's admission takes its
    // own version latch and store locks.
    Status s = target_worker_->InstallMigratedData(*job->request,
                                                   job->response);
    {
      MutexLock lock(mu_);
      job->status = s;
      job->done = true;
      job_ = nullptr;
      cv_.NotifyAll();
      if (stop_) return;
    }
  }
}

Status RpcMigrationChannel::Install(const KvBatchRequest& request,
                                    KvBatchResponse* response) {
  std::string payload;
  if (request.install) {
    request.EncodeTo(&payload);
  } else {
    KvBatchRequest flagged = request;
    flagged.install = true;
    flagged.EncodeTo(&payload);
  }
  std::string response_bytes;
  {
    MutexLock lock(mu_);
    DPR_RETURN_NOT_OK(connection_->Call(payload, &response_bytes));
  }
  if (!response->DecodeFrom(response_bytes)) {
    return Status::IOError("undecodable migration-install response");
  }
  return Status::OK();
}

}  // namespace dpr
