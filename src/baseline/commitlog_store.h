#ifndef DPR_BASELINE_COMMITLOG_STORE_H_
#define DPR_BASELINE_COMMITLOG_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/wal.h"

namespace dpr {

/// Commit-log durability policy, mirroring Cassandra's commitlog_sync knob
/// (paper §7.6 / Fig. 19a):
///  * kNone     — writes are memory-only (not recoverable);
///  * kPeriodic — writes append to the log, a background thread fsyncs every
///                sync_period_us (eventual recoverability);
///  * kGroup    — a write blocks until the group fsync covering it completes
///                (synchronous recoverability).
enum class CommitLogSync { kNone, kPeriodic, kGroup };

struct CommitLogStoreOptions {
  CommitLogSync sync = CommitLogSync::kPeriodic;
  uint64_t sync_period_us = 10000;  // Cassandra default: 10 ms
  std::unique_ptr<Device> log_device;
};

/// Minimal Cassandra-like partition store: an in-memory table in front of a
/// commit log. Only the recoverability knob is modeled — that is the sole
/// axis Fig. 19(a) varies.
class CommitLogStore {
 public:
  explicit CommitLogStore(CommitLogStoreOptions options);
  ~CommitLogStore();

  CommitLogStore(const CommitLogStore&) = delete;
  CommitLogStore& operator=(const CommitLogStore&) = delete;

  Status Put(Slice key, Slice value);
  Status Get(Slice key, std::string* value);

  /// Replays the durable commit log into a fresh table (crash recovery).
  Status Recover();

  void SimulateCrash();
  uint64_t size() const;

 private:
  void SyncLoop();

  CommitLogStoreOptions options_;
  mutable Mutex mu_{LockRank::kStoreFlush, "baseline.table"};
  std::unordered_map<std::string, std::string> map_ GUARDED_BY(mu_);
  // Set once in the constructor before sync_thread_ spawns; the WAL
  // serializes appends internally (kStorage, below both store locks).
  std::unique_ptr<WriteAheadLog> log_;

  // Group-commit machinery: writers wait until synced_batch_ covers their
  // enqueue batch.
  Mutex sync_mu_{LockRank::kStoreCheckpoints, "baseline.sync"};
  CondVar sync_cv_;
  // Batch number being accumulated.
  uint64_t pending_batch_ GUARDED_BY(sync_mu_) = 0;
  // Last batch made durable.
  uint64_t synced_batch_ GUARDED_BY(sync_mu_) = 0;
  std::thread sync_thread_;
  // relaxed flag: sync-loop exit signal; sync_mu_/join do the handoff.
  std::atomic<bool> stop_{false};
};

}  // namespace dpr

#endif  // DPR_BASELINE_COMMITLOG_STORE_H_
