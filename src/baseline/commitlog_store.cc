#include "baseline/commitlog_store.h"

#include <utility>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"

namespace dpr {

CommitLogStore::CommitLogStore(CommitLogStoreOptions options)
    : options_(std::move(options)) {
  if (options_.log_device == nullptr) {
    options_.log_device = std::make_unique<MemoryDevice>();
  }
  if (options_.sync != CommitLogSync::kNone) {
    log_ = std::make_unique<WriteAheadLog>(std::move(options_.log_device));
    sync_thread_ = std::thread([this] { SyncLoop(); });
  }
}

CommitLogStore::~CommitLogStore() {
  stop_.store(true, std::memory_order_release);
  sync_cv_.NotifyAll();
  if (sync_thread_.joinable()) sync_thread_.join();
}

Status CommitLogStore::Put(Slice key, Slice value) {
  uint64_t my_batch = 0;
  if (log_ != nullptr) {
    std::string rec;
    PutLengthPrefixed(&rec, key);
    PutLengthPrefixed(&rec, value);
    DPR_RETURN_NOT_OK(log_->Append(rec));
    if (options_.sync == CommitLogSync::kGroup) {
      MutexLock guard(sync_mu_);
      my_batch = pending_batch_;
    }
  }
  {
    MutexLock guard(mu_);
    map_[key.ToString()] = value.ToString();
  }
  if (options_.sync == CommitLogSync::kGroup) {
    // Group commit: block until the fsync that covers this append lands.
    MutexLock lock(sync_mu_);
    sync_cv_.NotifyAll();  // wake the syncer promptly
    sync_cv_.Wait(sync_mu_, [&] {
      return synced_batch_ > my_batch || stop_.load(std::memory_order_acquire);
    });
  }
  return Status::OK();
}

Status CommitLogStore::Get(Slice key, std::string* value) {
  MutexLock guard(mu_);
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return Status::NotFound();
  if (value != nullptr) *value = it->second;
  return Status::OK();
}

void CommitLogStore::SyncLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (options_.sync == CommitLogSync::kPeriodic) {
      SleepMicros(options_.sync_period_us);
    } else {
      // Group mode: coalesce whatever arrived since the last fsync.
      MutexLock lock(sync_mu_);
      sync_cv_.WaitFor(sync_mu_, std::chrono::microseconds(200));
    }
    if (stop_.load(std::memory_order_acquire)) break;
    uint64_t batch;
    {
      MutexLock guard(sync_mu_);
      batch = pending_batch_;
      pending_batch_ = batch + 1;
    }
    Status s = log_->Sync();
    if (!s.ok()) DPR_WARN("commit log sync: %s", s.ToString().c_str());
    {
      MutexLock guard(sync_mu_);
      synced_batch_ = batch + 1;
    }
    sync_cv_.NotifyAll();
  }
  sync_cv_.NotifyAll();
}

Status CommitLogStore::Recover() {
  MutexLock guard(mu_);
  map_.clear();
  if (log_ == nullptr) return Status::OK();
  return log_->Replay([this](uint64_t, Slice record) {
    Decoder dec(record);
    Slice k;
    Slice v;
    if (dec.GetLengthPrefixed(&k) && dec.GetLengthPrefixed(&v)) {
      map_[k.ToString()] = v.ToString();
    }
  });
}

void CommitLogStore::SimulateCrash() {
  MutexLock guard(mu_);
  map_.clear();
  if (log_ != nullptr) log_->device()->SimulateCrash();
}

uint64_t CommitLogStore::size() const {
  MutexLock guard(mu_);
  return map_.size();
}

}  // namespace dpr
