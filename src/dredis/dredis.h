#ifndef DPR_DREDIS_DREDIS_H_
#define DPR_DREDIS_DREDIS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "dpr/worker.h"
#include "net/rpc.h"
#include "respstore/resp_store.h"

namespace dpr {

/// Serves an unmodified RespStore ("Redis") over RPC: each message is an
/// encoded command batch, each response the encoded replies. The transport
/// invokes the handler from its shared executor pool, so concurrent batches
/// hit the store simultaneously; RespStore's internal map/save locks make
/// that safe.
class RespStoreServer {
 public:
  RespStoreServer(RespStore* store, std::unique_ptr<RpcServer> server);
  ~RespStoreServer();

  Status Start();
  void Stop();
  const std::string& address() const { return address_; }

 private:
  RespStore* store_;
  std::unique_ptr<RpcServer> server_;
  std::string address_;
};

/// Forwards every message unchanged to a backend endpoint — the paper's
/// "Redis + proxy" control configuration that isolates the cost of the extra
/// network hop from the cost of DPR itself (§7.5).
class PassThroughProxy {
 public:
  PassThroughProxy(std::unique_ptr<RpcConnection> backend,
                   std::unique_ptr<RpcServer> server);
  ~PassThroughProxy();

  Status Start();
  void Stop();
  const std::string& address() const { return address_; }

 private:
  std::unique_ptr<RpcConnection> backend_;
  std::unique_ptr<RpcServer> server_;
  std::string address_;
};

/// StateObject adapter over an *unmodified* remote cache-store: Commit() is
/// BGSAVE + LASTSAVE polling, Restore() is the store's snapshot reload
/// ("restarting the Redis instance", §6). The version counter lives here in
/// the wrapper; the store never learns about DPR.
class RemoteRespStateObject : public StateObject {
 public:
  /// `crash_handle` (optional) lets failure tests crash the backing store;
  /// it is not part of the protocol.
  RemoteRespStateObject(std::unique_ptr<RpcConnection> conn,
                        RespStore* crash_handle = nullptr);
  ~RemoteRespStateObject() override;

  Status PerformCheckpoint(Version target_version, PersistCallback on_persist,
                           Version* out_token) override;
  Status RestoreCheckpoint(Version version, Version* restored_token) override;
  Version CurrentVersion() const override {
    return version_.load(std::memory_order_acquire);
  }
  void SimulateCrash() override;

  RpcConnection* connection() { return conn_.get(); }

 private:
  void PollLoop();

  std::unique_ptr<RpcConnection> conn_;
  RespStore* crash_handle_;
  // release on checkpoint/rollback, acquire on read: a reader that observes
  // version v must also observe every state mutation published before the
  // bump (batches are fenced by the worker's version latch).
  std::atomic<uint64_t> version_{1};

  // Taken under the worker's exclusive version latch (PerformCheckpoint), so
  // it ranks with the store-side flush locks; never held across an RPC.
  Mutex mu_{LockRank::kStoreFlush, "dredis.stateobj"};
  CondVar cv_;
  struct Outstanding {
    Version token;
    PersistCallback callback;
  };
  std::deque<Outstanding> outstanding_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread poll_thread_;
};

/// The D-Redis proxy (paper Fig. 9): server-side libDPR (DprWorker) in front
/// of an unmodified store. Request wire format:
///   [DprRequestHeader][u32 op-count][encoded command batch]
/// Response:
///   [DprResponseHeader][encoded replies]
class DRedisProxy {
 public:
  struct Options {
    WorkerId id = 0;
    DprWorkerOptions dpr;  // finder + checkpoint interval
  };

  DRedisProxy(Options options, std::unique_ptr<RpcConnection> store_conn,
              std::unique_ptr<RpcServer> server,
              RespStore* crash_handle = nullptr);
  ~DRedisProxy();

  Status Start();
  void Stop();
  const std::string& address() const { return address_; }
  DprWorker* dpr_worker() { return dpr_worker_.get(); }

 private:
  void Handle(Slice request, std::string* response);

  Options options_;
  std::unique_ptr<RemoteRespStateObject> state_object_;
  std::unique_ptr<DprWorker> dpr_worker_;
  std::unique_ptr<RpcServer> server_;
  std::string address_;
};

}  // namespace dpr

#endif  // DPR_DREDIS_DREDIS_H_
