#include "dredis/client.h"

#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace dpr {

DRedisClient::DRedisClient(DRedisClientConfig config)
    : config_(std::move(config)) {}

void DRedisClient::AddShard(uint32_t shard,
                            std::unique_ptr<RpcConnection> conn) {
  shards_[shard] = std::move(conn);
}

uint32_t DRedisClient::ShardOf(uint64_t key, uint32_t num_shards) {
  return static_cast<uint32_t>(Mix64(key ^ 0x5bd1e995) % num_shards);
}

std::unique_ptr<DRedisClient::Session> DRedisClient::NewSession(
    uint64_t session_id) {
  return std::unique_ptr<Session>(new Session(this, session_id));
}

DRedisClient::Session::Session(DRedisClient* client, uint64_t session_id)
    : client_(client), dpr_session_(session_id) {}

DRedisClient::Session::~Session() {
  Status s = WaitForAll();
  if (!s.ok()) DPR_WARN("D-Redis session teardown: %s", s.ToString().c_str());
}

void DRedisClient::Session::Set(uint64_t key, uint64_t value,
                                OpCallback callback) {
  RespCommand cmd;
  cmd.op = RespOp::kSet;
  cmd.key.assign(reinterpret_cast<const char*>(&key), 8);
  cmd.value.assign(reinterpret_cast<const char*>(&value), 8);
  Issue(ShardOf(key, client_->config_.num_shards), cmd, std::move(callback));
}

void DRedisClient::Session::Get(uint64_t key, OpCallback callback) {
  RespCommand cmd;
  cmd.op = RespOp::kGet;
  cmd.key.assign(reinterpret_cast<const char*>(&key), 8);
  Issue(ShardOf(key, client_->config_.num_shards), cmd, std::move(callback));
}

void DRedisClient::Session::Issue(uint32_t shard, const RespCommand& cmd,
                                  OpCallback callback) {
  Batch& batch = building_[shard];
  cmd.EncodeTo(&batch.body);
  batch.count += 1;
  batch.callbacks.push_back(std::move(callback));
  ++ops_issued_;
  if (batch.count >= client_->config_.batch_size) Dispatch(shard);
}

void DRedisClient::Session::Flush() {
  for (auto& [shard, batch] : building_) {
    if (batch.count > 0) Dispatch(shard);
  }
}

void DRedisClient::Session::Dispatch(uint32_t shard) {
  auto batch = std::make_shared<Batch>(std::move(building_[shard]));
  building_[shard] = Batch{};
  const uint32_t n = batch->count;
  {
    MutexLock lock(mu_);
    window_cv_.Wait(mu_, [&]() REQUIRES(mu_) {
      return outstanding_ + n <= client_->config_.window;
    });
    outstanding_ += n;
  }
  auto it = client_->shards_.find(shard);
  if (it == client_->shards_.end()) {
    RunCallbacks(*batch, Slice(), Status::Unavailable("no such shard"));
    return;
  }
  std::string message;
  uint64_t start_seqno = 0;
  if (client_->config_.use_dpr) {
    start_seqno = dpr_session_.IssuePending(shard, n);
    DprRequestHeader header = dpr_session_.MakeHeader();
    header.EncodeTo(&message);
  }
  message.append(batch->body);
  it->second->CallAsync(
      std::move(message),
      [this, shard, batch, start_seqno](Status s, Slice payload) {
        OnResponse(shard, batch, start_seqno, std::move(s), payload);
      });
}

void DRedisClient::Session::OnResponse(uint32_t shard,
                                       std::shared_ptr<Batch> batch,
                                       uint64_t start_seqno, Status transport,
                                       Slice payload) {
  if (!client_->config_.use_dpr) {
    RunCallbacks(*batch, payload, transport);
    return;
  }
  DprResponseHeader header;
  size_t consumed = 0;
  if (transport.ok() && header.DecodeFrom(payload, &consumed) &&
      header.status == DprResponseHeader::BatchStatus::kOk) {
    dpr_session_.ResolvePending(start_seqno, header);
    RunCallbacks(*batch,
                 Slice(payload.data() + consumed, payload.size() - consumed),
                 Status::OK());
    return;
  }
  DprResponseHeader vacuous;
  dpr_session_.ResolvePending(start_seqno, vacuous);
  if (transport.ok()) dpr_session_.ObserveWatermark(shard, header);
  RunCallbacks(*batch, Slice(),
               transport.ok() ? Status::Aborted("batch rejected")
                              : transport);
}

void DRedisClient::Session::RunCallbacks(const Batch& batch, Slice replies,
                                         const Status& error) {
  size_t pos = 0;
  RespReply reply;
  for (const OpCallback& cb : batch.callbacks) {
    Status op_status = error;
    Slice value;
    if (error.ok()) {
      size_t consumed = 0;
      if (reply.DecodeFrom(Slice(replies.data() + pos, replies.size() - pos),
                           &consumed)) {
        pos += consumed;
        op_status = reply.status;
        value = Slice(reply.value);
      } else {
        op_status = Status::Corruption("short reply batch");
      }
    }
    if (cb) cb(op_status, value);
  }
  {
    MutexLock guard(mu_);
    outstanding_ -= batch.count;
  }
  window_cv_.NotifyAll();
}

Status DRedisClient::Session::WaitForAll(uint64_t timeout_ms) {
  Flush();
  MutexLock lock(mu_);
  const bool done = window_cv_.WaitFor(
      mu_, std::chrono::milliseconds(timeout_ms),
      [&]() REQUIRES(mu_) { return outstanding_ == 0; });
  return done ? Status::OK() : Status::TimedOut("ops still outstanding");
}

}  // namespace dpr
