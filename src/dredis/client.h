#ifndef DPR_DREDIS_CLIENT_H_
#define DPR_DREDIS_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "dpr/session.h"
#include "net/rpc.h"
#include "respstore/resp_store.h"

namespace dpr {

struct DRedisClientConfig {
  uint32_t num_shards = 1;
  uint32_t batch_size = 16;  // pre-computed command batches (paper §7.1)
  uint32_t window = 1024;    // outstanding commands
  /// true  -> talk to D-Redis proxies (DPR header + libDPR tracking);
  /// false -> talk to plain Redis / pass-through proxies (raw batches).
  bool use_dpr = true;
};

/// Client for Redis-style deployments: plain Redis, Redis-behind-proxy, or
/// D-Redis (DPR). Keys are 8-byte integers serialized into the string key
/// space; values are 8-byte integers.
class DRedisClient {
 public:
  explicit DRedisClient(DRedisClientConfig config);

  void AddShard(uint32_t shard, std::unique_ptr<RpcConnection> conn);

  class Session {
   public:
    using OpCallback = std::function<void(Status, Slice value)>;

    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    void Set(uint64_t key, uint64_t value, OpCallback callback = nullptr);
    void Get(uint64_t key, OpCallback callback = nullptr);

    void Flush();
    Status WaitForAll(uint64_t timeout_ms = 30000);

    DprSession& dpr() { return dpr_session_; }
    uint64_t ops_issued() const { return ops_issued_; }

   private:
    friend class DRedisClient;
    Session(DRedisClient* client, uint64_t session_id);

    struct Batch {
      std::string body;  // encoded commands
      uint32_t count = 0;
      std::vector<OpCallback> callbacks;
    };

    void Issue(uint32_t shard, const RespCommand& cmd, OpCallback callback);
    void Dispatch(uint32_t shard);
    void OnResponse(uint32_t shard, std::shared_ptr<Batch> batch,
                    uint64_t start_seqno, Status transport, Slice payload);
    void RunCallbacks(const Batch& batch, Slice replies, const Status& error);

    DRedisClient* client_;
    DprSession dpr_session_;
    std::map<uint32_t, Batch> building_;
    uint64_t ops_issued_ = 0;

    Mutex mu_{LockRank::kClientWindow, "dredis.client.window"};
    CondVar window_cv_;
    uint64_t outstanding_ GUARDED_BY(mu_) = 0;
  };

  std::unique_ptr<Session> NewSession(uint64_t session_id);

  const DRedisClientConfig& config() const { return config_; }

  static uint32_t ShardOf(uint64_t key, uint32_t num_shards);

 private:
  friend class Session;
  DRedisClientConfig config_;
  std::map<uint32_t, std::unique_ptr<RpcConnection>> shards_;
};

}  // namespace dpr

#endif  // DPR_DREDIS_CLIENT_H_
