#include "dredis/dredis.h"

#include <utility>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"

namespace dpr {

// ------------------------------------------------------------ RespStoreServer

RespStoreServer::RespStoreServer(RespStore* store,
                                 std::unique_ptr<RpcServer> server)
    : store_(store), server_(std::move(server)) {}

RespStoreServer::~RespStoreServer() { Stop(); }

Status RespStoreServer::Start() {
  DPR_RETURN_NOT_OK(server_->Start([this](Slice req, std::string* resp) {
    Status s = store_->ExecuteBatch(req, resp);
    if (!s.ok()) {
      resp->clear();
      RespReply reply;
      reply.status = s;
      reply.EncodeTo(resp);
    }
  }));
  address_ = server_->address();
  return Status::OK();
}

void RespStoreServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

// ----------------------------------------------------------- PassThroughProxy

PassThroughProxy::PassThroughProxy(std::unique_ptr<RpcConnection> backend,
                                   std::unique_ptr<RpcServer> server)
    : backend_(std::move(backend)), server_(std::move(server)) {}

PassThroughProxy::~PassThroughProxy() { Stop(); }

Status PassThroughProxy::Start() {
  DPR_RETURN_NOT_OK(server_->Start([this](Slice req, std::string* resp) {
    Status s = backend_->Call(req, resp);
    if (!s.ok()) {
      resp->clear();
      RespReply reply;
      reply.status = s;
      reply.EncodeTo(resp);
    }
  }));
  address_ = server_->address();
  return Status::OK();
}

void PassThroughProxy::Stop() {
  if (server_ != nullptr) server_->Stop();
}

// ------------------------------------------------------ RemoteRespStateObject

RemoteRespStateObject::RemoteRespStateObject(
    std::unique_ptr<RpcConnection> conn, RespStore* crash_handle)
    : conn_(std::move(conn)), crash_handle_(crash_handle) {
  poll_thread_ = std::thread([this] { PollLoop(); });
}

RemoteRespStateObject::~RemoteRespStateObject() {
  {
    MutexLock guard(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (poll_thread_.joinable()) poll_thread_.join();
}

namespace {

Status SendCommand(RpcConnection* conn, RespOp op, uint64_t arg,
                   RespReply* reply) {
  RespCommand cmd;
  cmd.op = op;
  cmd.value.assign(reinterpret_cast<const char*>(&arg), 8);
  std::string encoded;
  cmd.EncodeTo(&encoded);
  std::string response;
  DPR_RETURN_NOT_OK(conn->Call(encoded, &response));
  size_t consumed = 0;
  if (!reply->DecodeFrom(response, &consumed)) {
    return Status::Corruption("bad reply");
  }
  return reply->status;
}

}  // namespace

Status RemoteRespStateObject::PerformCheckpoint(Version target_version,
                                                PersistCallback on_persist,
                                                Version* out_token) {
  const Version token = version_.load(std::memory_order_acquire);
  if (target_version <= token) {
    return Status::InvalidArgument("target version must exceed current");
  }
  {
    MutexLock guard(mu_);
    if (!outstanding_.empty()) return Status::Busy("BGSAVE in progress");
  }
  // BGSAVE draws the version boundary on the unmodified store; the caller
  // (DprWorker) holds the exclusive batch latch so no batch straddles it.
  RespReply reply;
  DPR_RETURN_NOT_OK(SendCommand(conn_.get(), RespOp::kBgSave, token, &reply));
  version_.store(target_version, std::memory_order_release);
  {
    MutexLock guard(mu_);
    outstanding_.push_back(Outstanding{token, std::move(on_persist)});
  }
  cv_.NotifyAll();
  if (out_token != nullptr) *out_token = token;
  return Status::OK();
}

void RemoteRespStateObject::PollLoop() {
  // Periodic LASTSAVE in the background determines when a checkpoint has
  // finished (paper §6).
  for (;;) {
    Outstanding job;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        return stop_ || !outstanding_.empty();
      });
      if (stop_) return;
      job = std::move(outstanding_.front());
      outstanding_.pop_front();
    }
    for (;;) {
      RespReply reply;
      Status s = SendCommand(conn_.get(), RespOp::kLastSave, 0, &reply);
      if (s.ok() && reply.value.size() == 8) {
        uint64_t last;
        memcpy(&last, reply.value.data(), 8);
        if (last >= job.token) break;
      }
      {
        MutexLock lock(mu_);
        if (stop_) return;
      }
      SleepMicros(2000);
    }
    if (job.callback) job.callback(job.token);
  }
}

Status RemoteRespStateObject::RestoreCheckpoint(Version version,
                                                Version* restored_token) {
  {
    // Drop checkpoints that will never complete (pre-crash BGSAVEs).
    MutexLock guard(mu_);
    outstanding_.clear();
  }
  RespReply reply;
  DPR_RETURN_NOT_OK(SendCommand(conn_.get(), RespOp::kRestore, version,
                                &reply));
  uint64_t restored = 0;
  if (reply.value.size() == 8) memcpy(&restored, reply.value.data(), 8);
  // Resume strictly above anything pre-rollback.
  const Version v_old = version_.load(std::memory_order_acquire);
  version_.store(v_old + 1, std::memory_order_release);
  if (restored_token != nullptr) *restored_token = restored;
  return Status::OK();
}

void RemoteRespStateObject::SimulateCrash() {
  if (crash_handle_ != nullptr) crash_handle_->SimulateCrash();
}

// ------------------------------------------------------------------ DRedisProxy

DRedisProxy::DRedisProxy(Options options,
                         std::unique_ptr<RpcConnection> store_conn,
                         std::unique_ptr<RpcServer> server,
                         RespStore* crash_handle)
    : options_(options), server_(std::move(server)) {
  state_object_ = std::make_unique<RemoteRespStateObject>(
      std::move(store_conn), crash_handle);
  options_.dpr.worker_id = options_.id;
  dpr_worker_ =
      std::make_unique<DprWorker>(state_object_.get(), options_.dpr);
}

DRedisProxy::~DRedisProxy() { Stop(); }

Status DRedisProxy::Start() {
  DPR_RETURN_NOT_OK(dpr_worker_->Start());
  DPR_RETURN_NOT_OK(server_->Start([this](Slice req, std::string* resp) {
    Handle(req, resp);
  }));
  address_ = server_->address();
  return Status::OK();
}

void DRedisProxy::Stop() {
  if (server_ != nullptr) server_->Stop();
  if (dpr_worker_ != nullptr) dpr_worker_->Stop();
}

void DRedisProxy::Handle(Slice request, std::string* response) {
  DprRequestHeader header;
  size_t consumed = 0;
  DprResponseHeader resp_header;
  if (!header.DecodeFrom(request, &consumed)) {
    dpr_worker_->FillResponse(kInvalidVersion,
                              DprResponseHeader::BatchStatus::kRetryLater,
                              &resp_header);
    resp_header.EncodeTo(response);
    return;
  }
  Slice body(request.data() + consumed, request.size() - consumed);
  Version version = kInvalidVersion;
  Status admit = dpr_worker_->BeginBatch(header, &version);
  if (!admit.ok()) {
    const auto status = admit.IsAborted()
                            ? DprResponseHeader::BatchStatus::kWorldLineShift
                            : DprResponseHeader::BatchStatus::kRetryLater;
    dpr_worker_->FillResponse(kInvalidVersion, status, &resp_header);
    resp_header.EncodeTo(response);
    return;
  }
  // Forward the raw batch to the unmodified store while holding the shared
  // version latch, so the whole batch lands in one version (paper §6).
  std::string replies;
  Status s = state_object_->connection()->Call(body, &replies);
  dpr_worker_->EndBatch();
  if (!s.ok()) {
    dpr_worker_->FillResponse(kInvalidVersion,
                              DprResponseHeader::BatchStatus::kRetryLater,
                              &resp_header);
    resp_header.EncodeTo(response);
    return;
  }
  dpr_worker_->FillResponse(version, DprResponseHeader::BatchStatus::kOk,
                            &resp_header);
  resp_header.EncodeTo(response);
  response->append(replies);
}

}  // namespace dpr
