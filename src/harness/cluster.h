#ifndef DPR_HARNESS_CLUSTER_H_
#define DPR_HARNESS_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "cluster/migration.h"
#include "dfaster/client.h"
#include "dfaster/worker.h"
#include "dpr/cluster_manager.h"
#include "dpr/finder.h"
#include "dpr/finder_service.h"
#include "dredis/client.h"
#include "harness/stats.h"
#include "dredis/dredis.h"
#include "metadata/metadata_store.h"
#include "net/inmemory_net.h"
#include "net/tcp_net.h"
#include "storage/device.h"
#include "storage/fsync_scheduler.h"

namespace dpr {

enum class TransportKind { kInMemory, kTcp };

/// Uniform control surface over every harness deployment: the same
/// membership, migration, and fault entry points whether the cluster under
/// test is D-FASTER or D-Redis. Tests, benches, and the chaos harness drive
/// elasticity through this interface; deployments that cannot support an
/// operation return NotSupported rather than offering a different API.
class ClusterControl {
 public:
  virtual ~ClusterControl() = default;

  virtual Status Start() = 0;
  virtual void Stop() = 0;

  // --- membership (state machine in cluster/membership.h) ---
  /// Joins a new, empty worker (kJoining). Returns its id via `new_id`.
  virtual Status AddWorker(WorkerId* new_id) = 0;
  /// Promotes a joined worker to full membership (kJoining -> kActive).
  virtual Status ActivateWorker(WorkerId id) = 0;
  /// Drains a member (kDraining): live-migrates every partition it owns to
  /// the least-loaded active member, removes it from the DPR table, and
  /// tombstones it (kRemoved).
  virtual Status DecommissionWorker(WorkerId id) = 0;
  /// Durable membership rows, tombstones included.
  virtual std::map<WorkerId, MemberState> MemberStates() const = 0;

  // --- live migration (cluster/migration.h) ---
  /// Moves a virtual partition to worker `to` with the phased protocol:
  /// seal, dual-ownership forwarding, drain, DPR commit barrier, world-line
  /// fence, ownership flip. Writes keep flowing throughout.
  virtual Status MigratePartition(uint32_t partition, WorkerId to) = 0;
  /// Current owner per the durable ownership table.
  virtual WorkerId OwnerOf(uint32_t partition) const = 0;

  // --- faults ---
  /// Crashes `failed` workers and runs the DPR recovery protocol.
  virtual Status InjectFailure(const std::vector<WorkerId>& failed) = 0;
};

struct ClusterOptions {
  uint32_t num_workers = 2;
  RecoverabilityMode mode = RecoverabilityMode::kDpr;
  StorageBackend backend = StorageBackend::kNull;
  uint64_t checkpoint_interval_us = 100000;  // paper default: 100 ms
  /// Per-shard cadence policy (src/ckpt/): adaptive by default — hot
  /// shards checkpoint more often than the interval above (down to its
  /// quarter), idle shards skip the I/O entirely, and every 16th persisted
  /// checkpoint is a full index image with deltas in between. Set
  /// CkptPolicy::FixedInterval() for the historical fixed fold-overs.
  CkptPolicy ckpt;
  FinderKind finder = FinderKind::kApprox;   // paper's eval default (§7.1)
  uint64_t finder_interval_us = 10000;
  TransportKind transport = TransportKind::kInMemory;
  uint64_t net_latency_us = 0;  // in-memory transport only
  /// TCP transport only: event-loop / executor sizing for every server the
  /// cluster brings up (workers and the remote finder).
  TcpServerOptions tcp;
  /// Run the finder behind a DprFinderServer and have workers + cluster
  /// manager reach it through a shared batching RemoteDprFinder — the
  /// paper's deployment shape, where the tracking plane is its own service.
  /// The coordinator still runs on the local finder (it owns the metadata).
  bool remote_finder = false;
  uint32_t server_threads = 2;
  uint64_t index_buckets = 1 << 16;
  /// Directory for file-backed devices; empty = memory-backed devices.
  std::string storage_dir;
};

/// Brings up a whole D-FASTER deployment in-process: metadata store, DPR
/// finder + coordinator, cluster manager, N workers with RPC endpoints.
/// The single-box equivalent of the paper's 8-VM Azure cluster.
class DFasterCluster : public ClusterControl {
 public:
  explicit DFasterCluster(ClusterOptions options);
  ~DFasterCluster() override;

  DFasterCluster(const DFasterCluster&) = delete;
  DFasterCluster& operator=(const DFasterCluster&) = delete;

  Status Start() override;
  void Stop() override;

  /// Client with remote connections to every worker (dedicated-client mode).
  std::unique_ptr<DFasterClient> NewClient(uint32_t batch_size,
                                           uint32_t window);

  /// Client co-located with `local_worker`: local keys run through shared
  /// memory, remote keys over the transport (paper §7.3).
  std::unique_ptr<DFasterClient> NewColocatedClient(WorkerId local_worker,
                                                    uint32_t batch_size,
                                                    uint32_t window);

  /// Injects a failure of `failed` workers and runs the recovery protocol.
  Status InjectFailure(const std::vector<WorkerId>& failed) override;

  /// Live migration (DESIGN.md §4i): seal -> dual-ownership forwarding ->
  /// drain -> DPR commit barrier -> world-line fence -> flip. The source
  /// stays authoritative until the flip, so writes keep flowing for the
  /// whole move; clients chase the flip via kNotOwner re-routes.
  Status MigratePartition(uint32_t partition, WorkerId to) override;

  /// Backward-compatible alias for MigratePartition (the pre-elastic name).
  Status TransferPartition(uint32_t partition, WorkerId to) {
    return MigratePartition(partition, to);
  }

  /// Current owner of a partition per the durable ownership table.
  WorkerId OwnerOf(uint32_t partition) const override;

  /// Elasticity (§5.3): adds a new, empty worker to the running cluster — a
  /// new DPR-table row plus a durable kJoining membership row. Move
  /// partitions to it with MigratePartition, then ActivateWorker. Existing
  /// clients created by NewClient reach it automatically (they resolve the
  /// endpoint lazily on first route).
  Status AddWorker(WorkerId* new_id) override;

  /// kJoining -> kActive once the join's migrations are done.
  Status ActivateWorker(WorkerId id) override;

  /// Full decommission: kDraining, live-migrate every owned partition to
  /// the least-loaded active member, drop the DPR row, tombstone.
  Status DecommissionWorker(WorkerId id) override;

  /// Durable membership rows.
  std::map<WorkerId, MemberState> MemberStates() const override;

  /// Removes an *empty* worker (drops its DPR-table row and best-effort
  /// advances its membership row to kRemoved). Fails if the worker still
  /// owns partitions. Prefer DecommissionWorker, which drains first.
  Status RemoveWorker(WorkerId id);

  DFasterWorker* worker(uint32_t i) { return workers_[i].get(); }
  uint32_t num_workers() const { return options_.num_workers; }
  ClusterManager* cluster_manager() { return cluster_manager_.get(); }
  /// The authoritative (local) finder; with remote_finder enabled this is
  /// the instance behind the RPC server.
  DprFinder* finder() { return finder_.get(); }
  /// The shared batching client, or nullptr when remote_finder is off.
  RemoteDprFinder* remote_finder() { return remote_finder_.get(); }
  MetadataStore* metadata() { return metadata_.get(); }
  ClusterMembership* membership() { return membership_.get(); }

  /// Aggregated tracking-plane counters across workers, finder, and (if
  /// deployed) the remote-finder client.
  TrackingPlaneStats tracking_stats();

 private:
  /// Address of worker `id`, or empty when unknown (locked: AddWorker grows
  /// the table while client resolvers read it).
  std::string AddressOf(WorkerId id) const;
  std::unique_ptr<RpcConnection> ConnectTo(const std::string& address);

  ClusterOptions options_;
  // Box-wide group-commit fsync scheduler. Declared before every consumer
  // (metadata store, workers) so it is destroyed after all of them.
  std::unique_ptr<GroupCommitScheduler> fsync_sched_;
  std::unique_ptr<InMemoryNetwork> net_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> finder_;
  std::unique_ptr<DprFinderServer> finder_server_;
  std::unique_ptr<RemoteDprFinder> remote_finder_;
  std::unique_ptr<ClusterManager> cluster_manager_;
  std::unique_ptr<ClusterMembership> membership_;
  std::vector<std::unique_ptr<DFasterWorker>> workers_;
  // Guards the address table (read by client lazy-connect resolvers under
  // their endpoint lock) and the in-flight migration registry (aborted by
  // the recovery listener).
  mutable Mutex topology_mu_{LockRank::kHarnessTopology, "harness.topology"};
  std::vector<std::string> addresses_ GUARDED_BY(topology_mu_);
  std::vector<MigrationDriver*> active_migrations_ GUARDED_BY(topology_mu_);
  bool started_ = false;
};

/// The three Redis-style deployments of §7.5, each with `num_shards` stores:
///  * kDirect      — clients talk straight to the stores ("Redis");
///  * kPassThrough — clients talk to forwarding proxies ("Redis + proxy");
///  * kDpr         — clients talk to D-Redis proxies (libDPR).
enum class RedisDeployment { kDirect, kPassThrough, kDpr };

struct RedisClusterOptions {
  uint32_t num_shards = 2;
  RedisDeployment deployment = RedisDeployment::kDpr;
  uint64_t checkpoint_interval_us = 100000;
  /// Cadence policy for the D-Redis proxies' DPR workers (see
  /// ClusterOptions::ckpt; the RESP store ignores index-image hints).
  CkptPolicy ckpt;
  uint64_t finder_interval_us = 10000;
  bool aof_sync = false;  // appendfsync=always (synchronous recoverability)
  uint32_t server_threads = 2;
};

class DRedisCluster : public ClusterControl {
 public:
  explicit DRedisCluster(RedisClusterOptions options);
  ~DRedisCluster() override;

  Status Start() override;
  void Stop() override;

  std::unique_ptr<DRedisClient> NewClient(uint32_t batch_size,
                                          uint32_t window);

  /// Crashes the given shards' stores and runs the DPR recovery protocol
  /// across all proxies (kDpr deployment only).
  Status InjectFailure(const std::vector<WorkerId>& failed_shards) override;

  // The D-Redis deployment is fixed-size: proxies sit one-to-one in front
  // of their stores and own no hash ranges, so elastic membership and live
  // migration do not apply. The entry points exist (ClusterControl) and
  // report NotSupported, keeping harness call sites uniform.
  Status AddWorker(WorkerId* new_id) override;
  Status ActivateWorker(WorkerId id) override;
  Status DecommissionWorker(WorkerId id) override;
  std::map<WorkerId, MemberState> MemberStates() const override;
  Status MigratePartition(uint32_t partition, WorkerId to) override;
  WorkerId OwnerOf(uint32_t partition) const override;

  RespStore* store(uint32_t i) { return stores_[i].get(); }
  DRedisProxy* proxy(uint32_t i) { return dpr_proxies_[i].get(); }
  DprFinder* finder() { return finder_.get(); }
  ClusterManager* cluster_manager() { return cluster_manager_.get(); }

  /// Aggregated tracking-plane counters across proxies and the finder.
  TrackingPlaneStats tracking_stats();

 private:
  RedisClusterOptions options_;
  // Destroyed after the metadata store and every RespStore (member order).
  std::unique_ptr<GroupCommitScheduler> fsync_sched_;
  std::unique_ptr<InMemoryNetwork> net_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> finder_;
  std::unique_ptr<ClusterManager> cluster_manager_;
  std::vector<std::unique_ptr<RespStore>> stores_;
  std::vector<std::unique_ptr<RespStoreServer>> store_servers_;
  std::vector<std::unique_ptr<PassThroughProxy>> pass_proxies_;
  std::vector<std::unique_ptr<DRedisProxy>> dpr_proxies_;
  std::vector<std::string> client_addresses_;
  bool started_ = false;
};

}  // namespace dpr

#endif  // DPR_HARNESS_CLUSTER_H_
