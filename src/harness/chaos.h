#ifndef DPR_HARNESS_CHAOS_H_
#define DPR_HARNESS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dpr/finder.h"

namespace dpr {

/// Knobs for one chaos run. Everything that varies between runs is derived
/// from `seed`; the remaining fields size the rig and the workload.
struct ChaosOptions {
  uint64_t seed = 1;
  uint32_t workers = 3;
  uint32_t sessions = 4;
  /// Workload steps per run. --quick mode uses the default; soak runs crank
  /// it up.
  uint32_t steps = 300;
  /// Log the schedule and every applied event to stderr.
  bool verbose = false;
};

/// One scheduled fault. `step` is the workload step at which it is applied;
/// `a`/`b` are operands (worker ids for crash-style events, unused
/// otherwise).
struct ChaosEvent {
  enum class Kind : uint8_t {
    kCrashWorker,          // fail worker a, run recovery
    kDoubleFailure,        // fail workers a and b in one recovery (Fig. 16)
    kNestedFailure,        // fail a, recover, immediately fail b (nested)
    kCoordinatorCrash,     // finder loses its in-memory state (§3.4)
    kMidCheckpointFailure, // start a checkpoint on a, crash before it lands
    kTornWrite,            // arm device.torn_write on worker a's log device
    kWriteFailBurst,       // arm device.write_fail on worker a's log device
    kSlowFsync,            // arm device.slow_fsync on worker a's log device
    kRpcErrorBurst,        // arm finder.rpc_error (remote finder only)
    kNetDropBurst,         // arm net.drop on the finder link (remote only)
    kNetDelayBurst,        // arm net.delay on the finder link (remote only)
    kPartitionFinder,      // arm net.partition on the finder link (remote)
    kSlowFsyncDuringCheckpoint,  // arm device.slow_fsync on worker a's log
                                 // device, then start a checkpoint at once:
                                 // the flush's group-commit fsync stalls
                                 // while the workload keeps issuing ops
    kMigrateRange,          // live-migrate a key range a -> b: seal at a,
                            // install at b entangled with a's version, then
                            // run the DPR commit barrier (cut must cover the
                            // installed version before the move counts)
    kMigrateDuringPartition,  // same, but with the finder link partitioned
                              // (remote) or a's device failing writes
                              // (local) while the barrier runs
    kMigrateDuringRollback,   // migrate a -> b, then crash a before the
                              // barrier: the world-line fence must abandon
                              // the move and the installed (uncommitted)
                              // records must roll back at b
    kDeltaCheckpoint,      // commit a delta (index-image) checkpoint on a,
                           // then crash a: recovery must restore over the
                           // delta chain, not just the newest full image
    kCheckpointStorm,      // burst of rapid checkpoints on a, alternating
                           // full and delta images, racing the workload —
                           // long chains, back-to-back flushes, and the
                           // cadence paths under pressure
  };
  Kind kind = Kind::kCrashWorker;
  uint32_t step = 0;
  uint32_t a = 0;
  uint32_t b = 0;

  std::string ToString() const;
};

/// Which transport carries the worker<->finder link on remote_finder runs.
/// Seed-derived so chaos coverage rotates across every production backend;
/// a kernel without io_uring support runs kTcpUring schedules over epoll
/// (logged, but the schedule string — the replay contract — is unchanged).
enum class FinderLink : uint8_t {
  kInMemory = 0,
  kTcpEpoll = 1,
  kTcpUring = 2,
};

/// A fully-determined chaos run: rig shape plus the ordered fault schedule.
/// Generate() is a pure function of ChaosOptions (in particular of the
/// seed) — regenerating from the same seed yields a byte-identical
/// ToString(), which is the replay contract chaos_test verifies.
struct ChaosSchedule {
  uint64_t seed = 0;
  FinderKind finder = FinderKind::kApprox;
  /// Deploy the tracking plane behind a DprFinderServer reached through a
  /// batching RemoteDprFinder over the transport in `finder_link`.
  bool remote_finder = false;
  FinderLink finder_link = FinderLink::kInMemory;
  bool strict_sessions = false;
  uint64_t exception_list_cap = ~0ull;
  std::vector<ChaosEvent> events;  // sorted by (step, kind, a, b)

  static ChaosSchedule Generate(const ChaosOptions& options);
  std::string ToString() const;
};

/// What a run did and whether the checkers stayed green.
struct ChaosReport {
  ChaosSchedule schedule;
  uint64_t ops = 0;         // client operations that were admitted
  uint64_t commits = 0;     // checkpoints triggered by the workload
  uint64_t recoveries = 0;  // recovery sequences run
  /// FaultPlane::ReportString() at teardown: per-point hit/fire counters.
  std::string fault_report;
  /// Empty when every invariant held; otherwise the first violation, with
  /// the seed embedded so the failure can be replayed.
  std::string violation;
};

/// Runs one seeded chaos schedule end to end: builds a D-FASTER rig shaped
/// by the schedule, applies the fault schedule while driving a random
/// multi-session workload, and validates the DPR invariants throughout
/// (monotone commit points, dependency-closed cuts, no reneged guarantees,
/// bounded-time progress after faults stop, and value-level prefix
/// consistency against a shadow history). Prints the seed at start so any
/// failure is replayable. Returns OK iff no invariant was violated;
/// the violation (if any) is also in `report->violation`.
Status RunChaos(const ChaosOptions& options, ChaosReport* report);

}  // namespace dpr

#endif  // DPR_HARNESS_CHAOS_H_
