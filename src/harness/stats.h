#ifndef DPR_HARNESS_STATS_H_
#define DPR_HARNESS_STATS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dpr {

/// Shared op counters for multi-threaded bench drivers.
struct BenchCounters {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
};

/// Fixed-width row printer for paper-style result tables.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpr

#endif  // DPR_HARNESS_STATS_H_
