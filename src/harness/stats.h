#ifndef DPR_HARNESS_STATS_H_
#define DPR_HARNESS_STATS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dpr {

/// Shared op counters for multi-threaded bench drivers. All relaxed: each
/// field is an independent monotonic tally; the reporting thread may see a
/// slightly stale mix across fields, which throughput math tolerates.
struct BenchCounters {
  // relaxed throughout, per the struct comment above.
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
};

/// Aggregated observability counters for the DPR tracking plane: the
/// workers' sharded dependency trackers, the finder's ingest/compute split,
/// and (when deployed) the batching remote-finder client. Filled by the
/// cluster harness; plain integers so benches can snapshot and diff them.
struct TrackingPlaneStats {
  // Worker-side dependency tracking (VersionDependencyTracker).
  uint64_t dep_records = 0;        // batches with cross-worker deps recorded
  uint64_t dep_empty_records = 0;  // batches admitted via the lock-free path
  uint64_t dep_drains = 0;         // checkpoint-time merges
  uint64_t dep_live_entries = 0;   // per-version entries pending (gauge)
  // Finder core (FinderCoreStats).
  uint64_t reports_ingested = 0;
  uint64_t reports_stale = 0;
  uint64_t staged_peak = 0;
  uint64_t cut_advances = 0;
  // Remote batching client (RemoteFinderStats), zero for local deployments.
  uint64_t remote_reports_enqueued = 0;
  uint64_t remote_batches_sent = 0;
  uint64_t remote_reports_sent = 0;
  uint64_t remote_reports_rejected = 0;
  uint64_t remote_send_retries = 0;
  uint64_t remote_snapshot_refreshes = 0;

  /// Average reports carried per kReportBatch RPC (>1 means batching works).
  double RemoteReportsPerBatch() const {
    return remote_batches_sent == 0 ? 0.0
                                    : static_cast<double>(remote_reports_sent) /
                                          static_cast<double>(
                                              remote_batches_sent);
  }

  void Print(const std::string& label) const;
};

/// Fixed-width row printer for paper-style result tables.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpr

#endif  // DPR_HARNESS_STATS_H_
