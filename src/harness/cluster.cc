#include "harness/cluster.h"

#include <algorithm>
#include <utility>

#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace dpr {

// ------------------------------------------------------------ DFasterCluster

DFasterCluster::DFasterCluster(ClusterOptions options)
    : options_(std::move(options)) {}

DFasterCluster::~DFasterCluster() { Stop(); }

Status DFasterCluster::Start() {
  InMemoryNetOptions net_options;
  net_options.server_threads = options_.server_threads;
  net_options.latency_us = options_.net_latency_us;
  net_ = std::make_unique<InMemoryNetwork>(net_options);

  // One group-commit fsync scheduler per box: all shards' durability waits
  // funnel through it, so fsyncs on devices that share a sync root coalesce.
  fsync_sched_ = std::make_unique<GroupCommitScheduler>();

  metadata_ = std::make_unique<MetadataStore>(
      MakeDevice(options_.backend == StorageBackend::kNull
                     ? StorageBackend::kNull
                     : StorageBackend::kLocal,
                 options_.storage_dir, "metadata.wal"),
      fsync_sched_.get());
  DPR_RETURN_NOT_OK(metadata_->Recover());
  finder_ = MakeDprFinder(
      {.kind = options_.finder, .metadata = metadata_.get()});

  // With remote_finder, the tracking plane is deployed as its own service:
  // workers and the cluster manager reach the finder through one shared
  // batching client; the local instance stays authoritative (it owns the
  // metadata store and runs the coordinator).
  DprFinder* plane = finder_.get();
  if (options_.remote_finder && options_.mode == RecoverabilityMode::kDpr) {
    std::unique_ptr<RpcServer> finder_rpc;
    if (options_.transport == TransportKind::kTcp) {
      finder_rpc = MakeTcpServer(0, options_.tcp);
    } else {
      finder_rpc = net_->CreateServer("finder");
    }
    finder_server_ = std::make_unique<DprFinderServer>(finder_.get(),
                                                       std::move(finder_rpc));
    DPR_RETURN_NOT_OK(finder_server_->Start());
    std::unique_ptr<RpcConnection> finder_conn;
    if (options_.transport == TransportKind::kTcp) {
      DPR_RETURN_NOT_OK(ConnectTcp(finder_server_->address(),
                                   TcpClientOptions{options_.tcp.backend},
                                   &finder_conn));
    } else {
      finder_conn = net_->Connect(finder_server_->address());
    }
    remote_finder_ = std::make_unique<RemoteDprFinder>(std::move(finder_conn));
    plane = remote_finder_.get();
  }
  cluster_manager_ = std::make_unique<ClusterManager>(plane);
  membership_ = std::make_unique<ClusterMembership>(metadata_.get());
  // A recovery aborts every in-flight migration promptly; the drivers'
  // world-line fences would catch it anyway, but not before burning the
  // whole commit-barrier timeout.
  cluster_manager_->SetRecoveryListener([this](WorldLine) {
    MutexLock lock(topology_mu_);
    for (MigrationDriver* driver : active_migrations_) driver->RequestAbort();
  });

  // Seed the durable ownership table with the default assignment so every
  // later lookup (clients, transfers, elastic joins) reads complete truth.
  if (metadata_->GetOwnership().empty()) {
    for (uint32_t vp = 0; vp < YcsbWorkload::kNumPartitions; ++vp) {
      DPR_RETURN_NOT_OK(metadata_->SetOwner(
          vp, YcsbWorkload::DefaultOwner(vp, options_.num_workers)));
    }
  }
  // Founding members go straight to kActive (kJoining is the state of a
  // worker still receiving its shards; the founders start owning theirs).
  if (metadata_->GetMemberStates().empty()) {
    for (uint32_t i = 0; i < options_.num_workers; ++i) {
      DPR_RETURN_NOT_OK(membership_->Transition(i, MemberState::kJoining));
      DPR_RETURN_NOT_OK(membership_->Transition(i, MemberState::kActive));
    }
  }

  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    DFasterWorkerConfig config;
    config.id = i;
    config.num_workers = options_.num_workers;
    config.mode = options_.mode;
    config.faster.index_buckets = options_.index_buckets;
    config.faster.log_device =
        MakeDevice(options_.backend, options_.storage_dir,
                   "worker" + std::to_string(i) + ".log");
    config.faster.meta_device =
        MakeDevice(options_.backend == StorageBackend::kNull
                       ? StorageBackend::kNull
                       : StorageBackend::kLocal,
                   options_.storage_dir,
                   "worker" + std::to_string(i) + ".meta");
    config.faster.fsync_scheduler = fsync_sched_.get();
    config.dpr.finder = plane;
    config.dpr.checkpoint_interval_us = options_.checkpoint_interval_us;
    config.dpr.ckpt_policy = options_.ckpt;
    auto worker = std::make_unique<DFasterWorker>(std::move(config));

    std::unique_ptr<RpcServer> server;
    if (options_.transport == TransportKind::kTcp) {
      server = MakeTcpServer(0, options_.tcp);
    } else {
      server = net_->CreateServer("worker" + std::to_string(i));
    }
    DPR_RETURN_NOT_OK(worker->Start(std::move(server)));
    {
      MutexLock lock(topology_mu_);
      addresses_.push_back(worker->address());
    }
    if (options_.mode == RecoverabilityMode::kDpr) {
      cluster_manager_->RegisterWorker(worker->dpr_worker());
    }
    workers_.push_back(std::move(worker));
  }
  if (options_.mode == RecoverabilityMode::kDpr) {
    finder_->StartCoordinator(options_.finder_interval_us);
  }
  started_ = true;
  return Status::OK();
}

void DFasterCluster::Stop() {
  if (!started_) return;
  started_ = false;
  if (finder_ != nullptr) finder_->StopCoordinator();
  for (auto& worker : workers_) worker->Stop();
  // Drain any reports the workers enqueued before tearing down the service.
  if (remote_finder_ != nullptr) (void)remote_finder_->Flush();
  if (finder_server_ != nullptr) finder_server_->Stop();
}

TrackingPlaneStats DFasterCluster::tracking_stats() {
  TrackingPlaneStats t;
  for (auto& worker : workers_) {
    DprWorker* dw = worker->dpr_worker();
    if (dw == nullptr) continue;
    const DepTrackerStats d = dw->dep_tracker_stats();
    t.dep_records += d.records;
    t.dep_empty_records += d.empty_records;
    t.dep_drains += d.drains;
    t.dep_live_entries += d.live_entries;
  }
  if (auto* core = dynamic_cast<FinderCore*>(finder_.get())) {
    const FinderCoreStats f = core->core_stats();
    t.reports_ingested = f.reports_ingested;
    t.reports_stale = f.reports_stale;
    t.staged_peak = f.staged_peak;
    t.cut_advances = f.cut_advances;
  }
  if (remote_finder_ != nullptr) {
    const RemoteFinderStats r = remote_finder_->stats();
    t.remote_reports_enqueued = r.reports_enqueued;
    t.remote_batches_sent = r.batches_sent;
    t.remote_reports_sent = r.reports_sent;
    t.remote_reports_rejected = r.reports_rejected;
    t.remote_send_retries = r.send_retries;
    t.remote_snapshot_refreshes = r.snapshot_refreshes;
  }
  return t;
}

std::string DFasterCluster::AddressOf(WorkerId id) const {
  MutexLock lock(topology_mu_);
  return id < addresses_.size() ? addresses_[id] : std::string();
}

std::unique_ptr<RpcConnection> DFasterCluster::ConnectTo(
    const std::string& address) {
  if (address.empty()) return nullptr;
  if (options_.transport == TransportKind::kTcp) {
    std::unique_ptr<RpcConnection> conn;
    // Clients ride the same backend knob as the cluster's servers so a
    // chaos schedule's finder_link choice exercises one transport end to
    // end (kAuto still resolves per kernel support).
    Status s = ConnectTcp(address, TcpClientOptions{options_.tcp.backend},
                          &conn);
    if (!s.ok()) {
      DPR_WARN("connect to %s failed: %s", address.c_str(),
               s.ToString().c_str());
      return nullptr;
    }
    return conn;
  }
  return net_->Connect(address);
}

std::unique_ptr<DFasterClient> DFasterCluster::NewClient(uint32_t batch_size,
                                                         uint32_t window) {
  DFasterClientConfig config;
  config.num_workers = options_.num_workers;
  config.batch_size = batch_size;
  config.window = window;
  config.cluster_manager = cluster_manager_.get();
  config.metadata = metadata_.get();
  // Lazy endpoint resolution: a worker that joins after this client exists
  // becomes reachable the moment the ownership table routes a key to it.
  config.connect_worker =
      [this](WorkerId id) -> std::unique_ptr<RpcConnection> {
    return ConnectTo(AddressOf(id));
  };
  auto client = std::make_unique<DFasterClient>(config);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    std::unique_ptr<RpcConnection> conn = ConnectTo(AddressOf(i));
    DPR_CHECK_MSG(conn != nullptr, "no connection to worker %u", i);
    client->AddRemoteWorker(i, std::move(conn));
  }
  return client;
}

std::unique_ptr<DFasterClient> DFasterCluster::NewColocatedClient(
    WorkerId local_worker, uint32_t batch_size, uint32_t window) {
  auto client = NewClient(batch_size, window);
  client->AddLocalWorker(workers_[local_worker].get());
  return client;
}

Status DFasterCluster::InjectFailure(const std::vector<WorkerId>& failed) {
  return cluster_manager_->HandleFailure(failed);
}

WorkerId DFasterCluster::OwnerOf(uint32_t partition) const {
  const auto ownership = metadata_->GetOwnership();
  auto it = ownership.find(partition);
  if (it != ownership.end()) return it->second;
  return YcsbWorkload::DefaultOwner(partition, options_.num_workers);
}

Status DFasterCluster::MigratePartition(uint32_t partition, WorkerId to) {
  const WorkerId from = OwnerOf(partition);
  if (from == to) return Status::OK();
  if (to >= workers_.size() || workers_[to] == nullptr) {
    return Status::InvalidArgument("no such worker");
  }
  if (from >= workers_.size() || workers_[from] == nullptr) {
    return Status::InvalidArgument("partition owner not in this cluster");
  }
  MemberState to_state;
  if (membership_ != nullptr && membership_->StateOf(to, &to_state).ok() &&
      (to_state == MemberState::kDraining ||
       to_state == MemberState::kRemoved)) {
    return Status::InvalidArgument("migration target is leaving the cluster");
  }
  DFasterWorker* src = workers_[from].get();
  DFasterWorker* dst = workers_[to].get();

  // The install path rides the regular RPC transport (in-memory or epoll
  // TCP), so migration traffic contends with client traffic exactly as it
  // would in a real deployment.
  std::unique_ptr<RpcConnection> conn = ConnectTo(AddressOf(to));
  if (conn == nullptr) return Status::Unavailable("no route to target");

  MigrationOptions mo;
  mo.partition = partition;
  mo.source = src;
  mo.target = dst;
  mo.channel = std::make_shared<RpcMigrationChannel>(to, std::move(conn));
  mo.metadata = metadata_.get();
  if (options_.mode == RecoverabilityMode::kDpr) {
    mo.get_cut = [this](DprCut* cut) {
      WorldLine wl;
      finder_->GetCut(&wl, cut);
      return Status::OK();
    };
    mo.pump = [this, src, dst] {
      // Nudge both sides to checkpoint, push any batched reports at the
      // finder, and recompute; the coordinator timer would get there too,
      // but the barrier should not have to wait out a full interval.
      if (src->dpr_worker() != nullptr) (void)src->dpr_worker()->TryCommit();
      if (dst->dpr_worker() != nullptr) (void)dst->dpr_worker()->TryCommit();
      if (remote_finder_ != nullptr) (void)remote_finder_->Flush();
      (void)finder_->ComputeCut();
      SleepMicros(200);
    };
  }

  MigrationDriver driver(std::move(mo));
  {
    MutexLock lock(topology_mu_);
    active_migrations_.push_back(&driver);
  }
  Status s = driver.Run();
  {
    MutexLock lock(topology_mu_);
    active_migrations_.erase(std::remove(active_migrations_.begin(),
                                         active_migrations_.end(), &driver),
                             active_migrations_.end());
  }
  return s;
}

Status DFasterCluster::AddWorker(WorkerId* new_id) {
  const WorkerId id = static_cast<WorkerId>(workers_.size());
  DFasterWorkerConfig config;
  config.id = id;
  config.num_workers = options_.num_workers;
  config.start_empty = true;  // partitions arrive via TransferPartition
  config.mode = options_.mode;
  config.faster.index_buckets = options_.index_buckets;
  config.faster.log_device =
      MakeDevice(options_.backend, options_.storage_dir,
                 "worker" + std::to_string(id) + ".log");
  config.faster.meta_device =
      MakeDevice(options_.backend == StorageBackend::kNull
                     ? StorageBackend::kNull
                     : StorageBackend::kLocal,
                 options_.storage_dir,
                 "worker" + std::to_string(id) + ".meta");
  config.faster.fsync_scheduler = fsync_sched_.get();
  config.dpr.finder = remote_finder_ != nullptr
                          ? static_cast<DprFinder*>(remote_finder_.get())
                          : finder_.get();
  config.dpr.checkpoint_interval_us = options_.checkpoint_interval_us;
  config.dpr.ckpt_policy = options_.ckpt;
  auto worker = std::make_unique<DFasterWorker>(std::move(config));
  std::unique_ptr<RpcServer> server;
  if (options_.transport == TransportKind::kTcp) {
    server = MakeTcpServer(0, options_.tcp);
  } else {
    server = net_->CreateServer("worker" + std::to_string(id));
  }
  DPR_RETURN_NOT_OK(worker->Start(std::move(server)));
  {
    MutexLock lock(topology_mu_);
    addresses_.push_back(worker->address());
  }
  if (options_.mode == RecoverabilityMode::kDpr) {
    cluster_manager_->RegisterWorker(worker->dpr_worker());
  }
  workers_.push_back(std::move(worker));
  options_.num_workers += 1;
  // Durable membership row: the join survives a metadata-service crash.
  DPR_RETURN_NOT_OK(membership_->Transition(id, MemberState::kJoining));
  if (new_id != nullptr) *new_id = id;
  return Status::OK();
}

Status DFasterCluster::ActivateWorker(WorkerId id) {
  if (id >= workers_.size() || workers_[id] == nullptr) {
    return Status::InvalidArgument("no such worker");
  }
  return membership_->Transition(id, MemberState::kActive);
}

Status DFasterCluster::DecommissionWorker(WorkerId id) {
  if (id >= workers_.size() || workers_[id] == nullptr) {
    return Status::InvalidArgument("no such worker");
  }
  DPR_RETURN_NOT_OK(membership_->Transition(id, MemberState::kDraining));
  // Live-migrate every owned partition to the least-loaded active member;
  // writes keep flowing throughout, exactly as for a scale-out move.
  for (;;) {
    const auto ownership = metadata_->GetOwnership();
    uint64_t next = 0;
    bool found = false;
    for (const auto& [vp, owner] : ownership) {
      if (owner == id) {
        next = vp;
        found = true;
        break;
      }
    }
    if (!found) break;
    std::map<WorkerId, uint32_t> load;
    for (WorkerId w : membership_->ActiveMembers()) {
      if (w != id && w < workers_.size() && workers_[w] != nullptr) {
        load[w] = 0;
      }
    }
    if (load.empty()) {
      return Status::Unavailable("no active member to drain to");
    }
    for (const auto& [vp, owner] : ownership) {
      auto it = load.find(owner);
      if (it != load.end()) ++it->second;
    }
    WorkerId target = load.begin()->first;
    for (const auto& [w, n] : load) {
      if (n < load[target]) target = w;
    }
    DPR_RETURN_NOT_OK(MigratePartition(static_cast<uint32_t>(next), target));
  }
  // RemoveWorker's membership advance walks the remaining legal edge
  // (kDraining -> kRemoved), landing the tombstone.
  return RemoveWorker(id);
}

std::map<WorkerId, MemberState> DFasterCluster::MemberStates() const {
  if (membership_ == nullptr) return {};
  return membership_->States();
}

Status DFasterCluster::RemoveWorker(WorkerId id) {
  if (id >= workers_.size() || workers_[id] == nullptr) {
    return Status::InvalidArgument("no such worker");
  }
  if (workers_[id]->OwnedPartitionCount() > 0) {
    return Status::InvalidArgument(
        "worker still owns partitions; transfer them first");
  }
  // Dropping the row removes the worker from every future DPR cut.
  DPR_RETURN_NOT_OK(finder_->RemoveWorker(id));
  cluster_manager_->UnregisterWorker(id);
  workers_[id]->Stop();
  // Best-effort membership advance for callers that skip DecommissionWorker
  // (a drained founder being removed directly): walk whatever legal edges
  // lead to the tombstone.
  if (membership_ != nullptr) {
    MemberState st;
    if (membership_->StateOf(id, &st).ok() && st != MemberState::kRemoved) {
      if (st == MemberState::kActive) {
        (void)membership_->Transition(id, MemberState::kDraining);
      }
      (void)membership_->Transition(id, MemberState::kRemoved);
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------- DRedisCluster

DRedisCluster::DRedisCluster(RedisClusterOptions options)
    : options_(std::move(options)) {}

DRedisCluster::~DRedisCluster() { Stop(); }

Status DRedisCluster::Start() {
  InMemoryNetOptions net_options;
  net_options.server_threads = options_.server_threads;
  net_ = std::make_unique<InMemoryNetwork>(net_options);

  fsync_sched_ = std::make_unique<GroupCommitScheduler>();
  if (options_.deployment == RedisDeployment::kDpr) {
    metadata_ = std::make_unique<MetadataStore>(
        std::make_unique<MemoryDevice>(), fsync_sched_.get());
    DPR_RETURN_NOT_OK(metadata_->Recover());
    finder_ = MakeDprFinder(
        {.kind = FinderKind::kApprox, .metadata = metadata_.get()});
    cluster_manager_ = std::make_unique<ClusterManager>(finder_.get());
  }

  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    RespStoreOptions store_options;
    store_options.aof_enabled = options_.aof_sync;
    store_options.fsync_scheduler = fsync_sched_.get();
    auto store = std::make_unique<RespStore>(std::move(store_options));
    auto store_server = std::make_unique<RespStoreServer>(
        store.get(), net_->CreateServer("redis" + std::to_string(i)));
    DPR_RETURN_NOT_OK(store_server->Start());

    switch (options_.deployment) {
      case RedisDeployment::kDirect:
        client_addresses_.push_back(store_server->address());
        break;
      case RedisDeployment::kPassThrough: {
        auto proxy = std::make_unique<PassThroughProxy>(
            net_->Connect(store_server->address()),
            net_->CreateServer("proxy" + std::to_string(i)));
        DPR_RETURN_NOT_OK(proxy->Start());
        client_addresses_.push_back(proxy->address());
        pass_proxies_.push_back(std::move(proxy));
        break;
      }
      case RedisDeployment::kDpr: {
        DRedisProxy::Options proxy_options;
        proxy_options.id = i;
        proxy_options.dpr.finder = finder_.get();
        proxy_options.dpr.checkpoint_interval_us =
            options_.checkpoint_interval_us;
        proxy_options.dpr.ckpt_policy = options_.ckpt;
        auto proxy = std::make_unique<DRedisProxy>(
            proxy_options, net_->Connect(store_server->address()),
            net_->CreateServer("dredis" + std::to_string(i)), store.get());
        DPR_RETURN_NOT_OK(proxy->Start());
        cluster_manager_->RegisterWorker(proxy->dpr_worker());
        client_addresses_.push_back(proxy->address());
        dpr_proxies_.push_back(std::move(proxy));
        break;
      }
    }
    store_servers_.push_back(std::move(store_server));
    stores_.push_back(std::move(store));
  }
  if (finder_ != nullptr) {
    finder_->StartCoordinator(options_.finder_interval_us);
  }
  started_ = true;
  return Status::OK();
}

void DRedisCluster::Stop() {
  if (!started_) return;
  started_ = false;
  if (finder_ != nullptr) finder_->StopCoordinator();
  for (auto& proxy : dpr_proxies_) proxy->Stop();
  for (auto& proxy : pass_proxies_) proxy->Stop();
  for (auto& server : store_servers_) server->Stop();
}

TrackingPlaneStats DRedisCluster::tracking_stats() {
  TrackingPlaneStats t;
  for (auto& proxy : dpr_proxies_) {
    DprWorker* dw = proxy->dpr_worker();
    if (dw == nullptr) continue;
    const DepTrackerStats d = dw->dep_tracker_stats();
    t.dep_records += d.records;
    t.dep_empty_records += d.empty_records;
    t.dep_drains += d.drains;
    t.dep_live_entries += d.live_entries;
  }
  if (auto* core = dynamic_cast<FinderCore*>(finder_.get())) {
    const FinderCoreStats f = core->core_stats();
    t.reports_ingested = f.reports_ingested;
    t.reports_stale = f.reports_stale;
    t.staged_peak = f.staged_peak;
    t.cut_advances = f.cut_advances;
  }
  return t;
}

Status DRedisCluster::AddWorker(WorkerId* /*new_id*/) {
  return Status::NotSupported("D-Redis deployments are fixed-size");
}

Status DRedisCluster::ActivateWorker(WorkerId /*id*/) {
  return Status::NotSupported("D-Redis deployments are fixed-size");
}

Status DRedisCluster::DecommissionWorker(WorkerId /*id*/) {
  return Status::NotSupported("D-Redis deployments are fixed-size");
}

std::map<WorkerId, MemberState> DRedisCluster::MemberStates() const {
  return {};
}

Status DRedisCluster::MigratePartition(uint32_t /*partition*/,
                                       WorkerId /*to*/) {
  return Status::NotSupported(
      "D-Redis proxies own no hash ranges; nothing to migrate");
}

WorkerId DRedisCluster::OwnerOf(uint32_t /*partition*/) const {
  return kInvalidWorker;
}

Status DRedisCluster::InjectFailure(
    const std::vector<uint32_t>& failed_shards) {
  if (cluster_manager_ == nullptr) {
    return Status::NotSupported("failure injection requires kDpr deployment");
  }
  // Crash the backing stores first (volatile state is gone), then run the
  // DPR recovery protocol; the proxies restore via the stores' snapshot
  // reload (RemoteRespStateObject::RestoreCheckpoint).
  std::vector<WorkerId> failed;
  for (uint32_t shard : failed_shards) {
    stores_[shard]->SimulateCrash();
    failed.push_back(shard);
  }
  return cluster_manager_->HandleFailure(failed);
}

std::unique_ptr<DRedisClient> DRedisCluster::NewClient(uint32_t batch_size,
                                                       uint32_t window) {
  DRedisClientConfig config;
  config.num_shards = options_.num_shards;
  config.batch_size = batch_size;
  config.window = window;
  config.use_dpr = options_.deployment == RedisDeployment::kDpr;
  auto client = std::make_unique<DRedisClient>(config);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    client->AddShard(i, net_->Connect(client_addresses_[i]));
  }
  return client;
}

}  // namespace dpr
