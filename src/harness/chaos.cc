#include "harness/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/cut_monitor.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "dpr/cluster_manager.h"
#include "dpr/finder_service.h"
#include "dpr/session.h"
#include "dpr/worker.h"
#include "faster/faster_store.h"
#include "fault/fault_plane.h"
#include "net/inmemory_net.h"
#include "net/tcp_net.h"

namespace dpr {

// ---------------------------------------------------------------- schedule

std::string ChaosEvent::ToString() const {
  static const char* kNames[] = {"crash",      "double",     "nested",
                                 "coord_crash", "mid_ckpt",  "torn_write",
                                 "write_fail", "slow_fsync", "rpc_error",
                                 "net_drop",   "net_delay",  "partition",
                                 "slow_fsync_ckpt", "migrate",
                                 "migrate_part", "migrate_rb",
                                 "delta-ckpt", "ckpt-storm"};
  std::string out = kNames[static_cast<int>(kind)];
  out += "@" + std::to_string(step) + "(" + std::to_string(a) + "," +
         std::to_string(b) + ")";
  return out;
}

ChaosSchedule ChaosSchedule::Generate(const ChaosOptions& options) {
  ChaosSchedule s;
  s.seed = options.seed;
  // Salted so the schedule stream and the workload stream (same seed) are
  // independent.
  Random rng(Mix64(options.seed) ^ 0x5c4a05ed11ec0deULL);
  const double fk = rng.NextDouble();
  s.finder = fk < 0.40   ? FinderKind::kApprox
             : fk < 0.70 ? FinderKind::kExact
                         : FinderKind::kHybrid;
  s.remote_finder = rng.Bernoulli(0.35);
  if (s.remote_finder) {
    // Rotate the finder link across every production transport. The draw
    // happens only on remote runs so local-finder schedules from older
    // seeds replay byte-identically.
    static constexpr FinderLink kLinks[] = {
        FinderLink::kInMemory, FinderLink::kTcpEpoll, FinderLink::kTcpUring};
    s.finder_link = kLinks[rng.Uniform(3)];
  }
  s.strict_sessions = rng.Bernoulli(0.25);
  static constexpr uint64_t kCaps[] = {~0ull, ~0ull, ~0ull, 1, 2, 8};
  s.exception_list_cap = kCaps[rng.Uniform(6)];

  using K = ChaosEvent::Kind;
  std::vector<K> kinds = {K::kCrashWorker,  K::kCrashWorker,
                          K::kDoubleFailure, K::kNestedFailure,
                          K::kCoordinatorCrash, K::kMidCheckpointFailure,
                          K::kTornWrite,    K::kWriteFailBurst,
                          K::kSlowFsync,    K::kSlowFsyncDuringCheckpoint,
                          K::kDeltaCheckpoint, K::kCheckpointStorm};
  if (s.remote_finder) {
    // Network and finder-RPC faults only exist on the remote deployment.
    kinds.insert(kinds.end(), {K::kRpcErrorBurst, K::kNetDropBurst,
                               K::kNetDelayBurst, K::kPartitionFinder});
  }
  if (options.workers > 1) {
    // Live migration needs a distinct source and target.
    kinds.insert(kinds.end(), {K::kMigrateRange, K::kMigrateRange,
                               K::kMigrateDuringPartition,
                               K::kMigrateDuringRollback});
  }
  const uint32_t n_events = 3 + static_cast<uint32_t>(rng.Uniform(6));
  for (uint32_t i = 0; i < n_events; ++i) {
    ChaosEvent e;
    e.kind = kinds[rng.Uniform(kinds.size())];
    e.step = static_cast<uint32_t>(rng.Uniform(options.steps));
    e.a = static_cast<uint32_t>(rng.Uniform(options.workers));
    e.b = static_cast<uint32_t>(rng.Uniform(options.workers));
    if ((e.kind == K::kDoubleFailure || e.kind == K::kNestedFailure ||
         e.kind == K::kMigrateRange || e.kind == K::kMigrateDuringPartition ||
         e.kind == K::kMigrateDuringRollback) &&
        options.workers > 1 && e.b == e.a) {
      e.b = (e.a + 1) % options.workers;
    }
    s.events.push_back(e);
  }
  std::sort(s.events.begin(), s.events.end(),
            [](const ChaosEvent& x, const ChaosEvent& y) {
              return std::make_tuple(x.step, static_cast<int>(x.kind), x.a,
                                     x.b) <
                     std::make_tuple(y.step, static_cast<int>(y.kind), y.a,
                                     y.b);
            });
  return s;
}

std::string ChaosSchedule::ToString() const {
  const char* fk = finder == FinderKind::kExact    ? "exact"
                   : finder == FinderKind::kApprox ? "approx"
                                                   : "hybrid";
  const char* link = finder_link == FinderLink::kTcpEpoll   ? "tcp-epoll"
                     : finder_link == FinderLink::kTcpUring ? "tcp-uring"
                                                            : "inmem";
  std::string out = "seed=" + std::to_string(seed) + " finder=" + fk +
                    " remote=" + (remote_finder ? "1" : "0") +
                    " link=" + link +
                    " strict=" + (strict_sessions ? "1" : "0") + " cap=";
  out += exception_list_cap == ~0ull ? std::string("inf")
                                     : std::to_string(exception_list_cap);
  out += " events=[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += " ";
    out += events[i].ToString();
  }
  out += "]";
  return out;
}

// ------------------------------------------------------------------ runner

namespace {

/// An executed-but-unacknowledged operation: IssuePending() was called and
/// the response is withheld until a later step (or dropped if a rollback
/// erases the segment first).
struct PendingOp {
  uint32_t session = 0;
  uint64_t start = 0;
  WorkerId worker = kInvalidWorker;
  DprResponseHeader resp;
  WorldLine issued_wl = kInitialWorldLine;
};

/// One surviving write in the shadow history of a (worker, key) pair.
struct ValueWrite {
  Version version = kInvalidVersion;
  uint64_t value = 0;
};

class ChaosRunner {
 public:
  ChaosRunner(const ChaosOptions& options, ChaosReport* report)
      : options_(options),
        schedule_(report->schedule),
        report_(report),
        rng_(Mix64(options.seed) ^ 0x3a05c41c0ffeeULL) {}

  ~ChaosRunner() {
    // workers_ is destroyed before stores_ (reverse declaration order), but
    // each store's flush thread fires its persistence callback into the
    // owning DprWorker. Drain the flush pipelines first —
    // WaitForCheckpoints() returns only after any in-flight callback has
    // completed — so no callback can touch a freed worker.
    for (auto& store : stores_) {
      if (store) store->WaitForCheckpoints();
    }
  }

  Status Setup() {
    metadata_ = std::make_unique<MetadataStore>(
        std::make_unique<MemoryDevice>());
    DPR_RETURN_NOT_OK(metadata_->Recover());
    local_finder_ = MakeDprFinder(
        {.kind = schedule_.finder, .metadata = metadata_.get()});
    plane_ = local_finder_.get();
    if (schedule_.remote_finder) {
      // The schedule picks the finder-link transport; a kTcpUring draw on a
      // kernel without support runs over epoll (the schedule string — the
      // replay contract — is not rewritten, so the seed still replays).
      FinderLink link = schedule_.finder_link;
      if (link == FinderLink::kTcpUring && !NetUringSupported()) {
        fprintf(stderr,
                "[chaos] finder link tcp-uring unsupported on this kernel; "
                "running over tcp-epoll\n");
        link = FinderLink::kTcpEpoll;
      }
      std::unique_ptr<RpcConnection> finder_conn;
      if (link == FinderLink::kInMemory) {
        InMemoryNetOptions net_options;
        net_options.server_threads = 2;
        net_ = std::make_unique<InMemoryNetwork>(net_options);
        finder_server_ = std::make_unique<DprFinderServer>(
            local_finder_.get(), net_->CreateServer("finder"));
        DPR_RETURN_NOT_OK(finder_server_->Start());
        finder_conn = net_->Connect(finder_server_->address());
      } else {
        const NetBackend backend = link == FinderLink::kTcpUring
                                       ? NetBackend::kIoUring
                                       : NetBackend::kEpoll;
        TcpServerOptions server_options;
        server_options.io_threads = 2;
        server_options.executor_threads = 2;
        server_options.backend = backend;
        finder_server_ = std::make_unique<DprFinderServer>(
            local_finder_.get(), MakeTcpServer(0, server_options));
        DPR_RETURN_NOT_OK(finder_server_->Start());
        DPR_RETURN_NOT_OK(ConnectTcp(finder_server_->address(),
                                     TcpClientOptions{backend},
                                     &finder_conn));
      }
      RemoteDprFinderOptions ro;
      ro.flush_interval_us = 1000;
      ro.snapshot_ttl_us = 0;  // exact read-after-report for the checkers
      ro.max_send_attempts = 10;
      ro.retry_backoff_us = 50;
      ro.retry_backoff_max_us = 1000;
      remote_finder_ = std::make_unique<RemoteDprFinder>(
          std::move(finder_conn), ro);
      plane_ = remote_finder_.get();
    }
    manager_ = std::make_unique<ClusterManager>(plane_);
    for (uint32_t i = 0; i < options_.workers; ++i) {
      FasterOptions fo;
      fo.index_buckets = 256;
      // Injection scope for device.* points is the worker id.
      fo.log_device = std::make_unique<FaultDevice>(
          std::make_unique<MemoryDevice>(), /*scope=*/i);
      fo.meta_device = std::make_unique<MemoryDevice>();
      stores_.push_back(std::make_unique<FasterStore>(std::move(fo)));
      DprWorkerOptions wo;
      wo.worker_id = i;
      wo.finder = plane_;
      wo.checkpoint_interval_us = 0;  // commits driven by the workload
      workers_.push_back(
          std::make_unique<DprWorker>(stores_.back().get(), wo));
      DPR_RETURN_NOT_OK(workers_.back()->Start());
      manager_->RegisterWorker(workers_.back().get());
    }
    SessionOptions so;
    so.strict = schedule_.strict_sessions;
    so.exception_list_cap = schedule_.exception_list_cap;
    for (uint32_t i = 0; i < options_.sessions; ++i) {
      sessions_.push_back(std::make_unique<DprSession>(i + 1, so));
    }
    last_commit_point_.assign(options_.sessions, 0);
    rolled_back_.assign(options_.sessions, 0);
    session_last_.assign(options_.sessions,
                         WorkerVersion{kInvalidWorker, 0});
    // Baseline escalation hazard: some survivor rollbacks turn into full
    // crash-and-restores mid-recovery (nested double failures, Fig. 16).
    FaultPlane::Instance().Arm({.point = faults::kClusterRollbackCrash,
                                .probability = 0.2,
                                .max_fires = 3});
    return Status::OK();
  }

  Status Run() {
    size_t next_event = 0;
    for (uint32_t step = 0; step < options_.steps; ++step) {
      while (next_event < schedule_.events.size() &&
             schedule_.events[next_event].step <= step) {
        DPR_RETURN_NOT_OK(Apply(schedule_.events[next_event]));
        ++next_event;
      }
      const double roll = rng_.NextDouble();
      if (roll < 0.62) {
        const uint32_t si = static_cast<uint32_t>(
            rng_.Uniform(options_.sessions));
        const WorkerId w = static_cast<WorkerId>(
            rng_.Uniform(options_.workers));
        DPR_RETURN_NOT_OK(
            DoOp(si, w, rng_.Uniform(48), rng_.NextDouble() < 0.3));
      } else if (roll < 0.78) {
        DPR_RETURN_NOT_OK(Commit(static_cast<WorkerId>(
            rng_.Uniform(options_.workers))));
      } else if (roll < 0.92) {
        DPR_RETURN_NOT_OK(CheckCut());
      } else {
        ResolveOne();
      }
    }
    return Drain();
  }

 private:
  Status Violation(std::string msg) {
    report_->violation = "chaos seed=" + std::to_string(schedule_.seed) +
                         ": " + std::move(msg);
    // Failure teardown must not wedge on still-armed faults.
    FaultPlane::Instance().DisarmAll();
    DPR_ERROR("%s", report_->violation.c_str());
    return Status::Corruption(report_->violation);
  }

  /// Runs the recovery protocol for `failed`, riding out injected bursts,
  /// then prunes the shadow state and realigns every session.
  Status Recover(std::vector<WorkerId> failed) {
    Status s;
    for (int attempt = 0; attempt < 80; ++attempt) {
      s = manager_->HandleFailure(failed);
      // IOError is retried too: injected device faults (write-fail bursts)
      // are bounded by max_fires, so rollback eventually goes through.
      if (s.ok() ||
          (!s.IsRetryable() && s.code() != Status::Code::kIOError)) {
        break;
      }
      SleepMicros(200);
    }
    if (!s.ok()) return Violation("recovery failed: " + s.ToString());
    ++report_->recoveries;
    WorldLine wl = kInitialWorldLine;
    DprCut cut;
    manager_->GetRecoveryInfo(&wl, &cut);
    // Rolled-back shadow edges can never commit; drop them.
    for (auto it = shadow_.begin(); it != shadow_.end();) {
      if (it->first.version > CutVersion(cut, it->first.worker)) {
        it = shadow_.erase(it);
      } else {
        ++it;
      }
    }
    // A write at version v survives the rollback iff v <= cut[w]
    // (checkpoint token t covers records with version <= t).
    for (auto& [wk, hist] : history_) {
      const Version cv = CutVersion(cut, wk.first);
      hist.erase(std::remove_if(hist.begin(), hist.end(),
                                [&](const ValueWrite& vw) {
                                  return vw.version > cv;
                                }),
                 hist.end());
    }
    return SyncSessions();
  }

  /// Moves lagging sessions onto the latest world-line, checking P3 (a
  /// surviving prefix never reneges on a previously-reported commit point).
  Status SyncSessions() {
    WorldLine wl = kInitialWorldLine;
    DprCut cut;
    manager_->GetRecoveryInfo(&wl, &cut);
    for (uint32_t si = 0; si < sessions_.size(); ++si) {
      DprSession& session = *sessions_[si];
      if (session.world_line() >= wl) continue;
      const uint64_t issued = session.next_seqno();
      const auto survivors = session.HandleFailure(wl, cut);
      if (survivors.prefix_end < last_commit_point_[si]) {
        return Violation(
            "P3: session " + std::to_string(si) + " reneged: survivors " +
            std::to_string(survivors.prefix_end) + " < reported " +
            std::to_string(last_commit_point_[si]));
      }
      rolled_back_[si] +=
          issued - survivors.prefix_end + survivors.excluded.size();
      last_commit_point_[si] = survivors.prefix_end;
      session_last_[si] = WorkerVersion{kInvalidWorker, 0};
    }
    // Segments of rolled-back world-lines are gone; withheld responses for
    // them must never be replayed into the session.
    pendings_.erase(
        std::remove_if(pendings_.begin(), pendings_.end(),
                       [&](const PendingOp& p) {
                         return sessions_[p.session]->world_line() !=
                                p.issued_wl;
                       }),
        pendings_.end());
    return Status::OK();
  }

  Status Apply(const ChaosEvent& e) {
    if (options_.verbose) {
      DPR_INFO("chaos seed=%llu: applying %s",
               static_cast<unsigned long long>(schedule_.seed),
               e.ToString().c_str());
    }
    FaultPlane& fp = FaultPlane::Instance();
    using K = ChaosEvent::Kind;
    switch (e.kind) {
      case K::kCrashWorker:
        return Recover({e.a});
      case K::kDoubleFailure:
        return Recover({e.a, e.b});
      case K::kNestedFailure:
        DPR_RETURN_NOT_OK(Recover({e.a}));
        return Recover({e.b});
      case K::kCoordinatorCrash:
        local_finder_->SimulateCoordinatorCrash();
        return Status::OK();
      case K::kMidCheckpointFailure:
        // Start a checkpoint and crash before waiting for it: whether the
        // flush landed decides (durably) what the recovery cut contains.
        (void)workers_[e.a]->TryCommit();
        return Recover({e.a});
      case K::kTornWrite:
        fp.Arm({.point = faults::kDevTornWrite,
                .scope = e.a,
                .max_fires = 2});
        return Status::OK();
      case K::kWriteFailBurst:
        fp.Arm({.point = faults::kDevWriteFail,
                .scope = e.a,
                .probability = 0.7,
                .max_fires = 4});
        return Status::OK();
      case K::kSlowFsync:
        fp.Arm({.point = faults::kDevSlowFsync,
                .scope = e.a,
                .max_fires = 3,
                .param = 1500});
        return Status::OK();
      case K::kRpcErrorBurst:
        fp.Arm({.point = faults::kFinderRpcError,
                .probability = 0.8,
                .max_fires = 6});
        return Status::OK();
      case K::kNetDropBurst:
        fp.Arm({.point = faults::kNetDrop,
                .probability = 0.5,
                .max_fires = 8});
        return Status::OK();
      case K::kNetDelayBurst:
        fp.Arm({.point = faults::kNetDelay,
                .probability = 0.5,
                .max_fires = 8,
                .param = 300});
        return Status::OK();
      case K::kPartitionFinder:
        fp.Arm({.point = faults::kNetPartition, .max_fires = 4});
        return Status::OK();
      case K::kSlowFsyncDuringCheckpoint:
        // The checkpoint flush's group-commit fsync hits the armed stall
        // while the workload keeps running — exercising waiters that pile
        // onto the next fsync group behind a slow device.
        fp.Arm({.point = faults::kDevSlowFsync,
                .scope = e.a,
                .max_fires = 3,
                .param = 2000});
        (void)workers_[e.a]->TryCommit();
        return Status::OK();
      case K::kMigrateRange:
        return MigrateRange(e.a, e.b, e.step, /*barrier=*/true);
      case K::kMigrateDuringPartition:
        // The barrier has to make progress (or legally abort) while the
        // tracking plane is unreachable / the source device is failing.
        if (schedule_.remote_finder) {
          fp.Arm({.point = faults::kNetPartition, .max_fires = 4});
        } else {
          fp.Arm({.point = faults::kDevWriteFail,
                  .scope = e.a,
                  .probability = 0.7,
                  .max_fires = 4});
        }
        return MigrateRange(e.a, e.b, e.step, /*barrier=*/true);
      case K::kDeltaCheckpoint:
        // A delta checkpoint followed immediately by a crash: the recovery
        // cut may land on the delta, forcing RestoreCheckpoint to walk the
        // chain back to its full base (or fall back to the log scan when the
        // chain is broken — both must reproduce the same store).
        DPR_RETURN_NOT_OK(Commit(e.a, CheckpointHints{.index_image = true,
                                                      .delta = true}));
        return Recover({e.a});
      case K::kCheckpointStorm: {
        // Back-to-back checkpoints racing the workload: grows a long delta
        // chain (every 4th full) with flush requests piling onto the flush
        // thread. Busy admissions just mean two storm ticks collided.
        for (int i = 0; i < 8; ++i) {
          DPR_RETURN_NOT_OK(Commit(
              e.a, CheckpointHints{.index_image = true, .delta = i % 4 != 3}));
        }
        return Status::OK();
      }
      case K::kMigrateDuringRollback:
        // Install without a barrier, then crash the source: the moved
        // records sit uncommitted at the target entangled with the rolled-
        // back source version, so recovery must erase them everywhere (the
        // shadow pruning in Recover() models exactly that).
        DPR_RETURN_NOT_OK(MigrateRange(e.a, e.b, e.step, /*barrier=*/false));
        return Recover({e.a});
    }
    return Status::OK();
  }

  /// Chaos-level model of live migration (DESIGN.md §4i): seal a version
  /// boundary at the source, snapshot a deterministic key range, install it
  /// at the target under DPR admission with the source's sealed version as
  /// both fast-forward target and dependency, then (optionally) run the
  /// commit barrier by committing the target and re-checking the cut. An
  /// admission rejection (world-line shift mid-move, target wedged) abandons
  /// the move with nothing installed — the legal abort path.
  Status MigrateRange(WorkerId a, WorkerId b, uint32_t salt, bool barrier) {
    if (a == b || a >= options_.workers || b >= options_.workers) {
      return Status::OK();
    }
    // Seal: a checkpoint boundary pins the moved snapshot at a stable
    // version on the source. Busy/retryable just means the boundary raced
    // the workload; the snapshot below is still version-consistent.
    Status seal = workers_[a]->TryCommit();
    if (!seal.ok() && !seal.IsBusy() && !seal.IsRetryable()) {
      return Violation("migrate seal: " + seal.ToString());
    }
    stores_[a]->WaitForCheckpoints();
    const Version vs = stores_[a]->CurrentVersion();
    // Deterministic key range: every live key congruent to the salt mod 4.
    std::vector<std::pair<uint64_t, uint64_t>> records;
    stores_[a]->Scan([&](uint64_t key, Slice value) {
      if ((key & 3) != (salt & 3)) return;
      uint64_t v = 0;
      if (value.size() == sizeof(v)) memcpy(&v, value.data(), sizeof(v));
      records.emplace_back(key, v);
    });
    if (records.empty()) return Status::OK();
    // Install under DPR admission: the batch fast-forwards the target to at
    // least vs and entangles the installed records with {a: vs}, so no cut
    // may cover the copies without covering the source version they came
    // from — the invariant P2/P5 then police.
    DprRequestHeader header;
    header.session_id = 0xfeed0000ull + salt;
    header.world_line = workers_[a]->world_line();
    header.version = vs;
    header.deps = {{a, vs}};
    Version vd = kInvalidVersion;
    Status admit;
    for (int attempt = 0; attempt < 100; ++attempt) {
      admit = workers_[b]->BeginBatch(header, &vd);
      if (admit.ok() || !admit.IsRetryable()) break;
      SleepMicros(100);
    }
    // Aborted (world-line fence) or still-wedged target: the migration is
    // abandoned with nothing installed. That is a legal outcome, not a
    // violation — the checkers verify nothing leaked.
    if (!admit.ok()) return Status::OK();
    {
      auto store_session = stores_[b]->NewSession();
      for (const auto& [key, value] : records) {
        Status us = store_session->Upsert(key, value);
        if (!us.ok()) {
          workers_[b]->EndBatch();
          return Violation("migrate install: " + us.ToString());
        }
      }
    }
    workers_[b]->EndBatch();
    MergeDependency(&shadow_[WorkerVersion{b, vd}], WorkerVersion{a, vs});
    for (const auto& [key, value] : records) {
      history_[{b, key}].push_back(ValueWrite{vd, value});
    }
    if (!barrier) return Status::OK();
    // Commit barrier: the move only counts once a cut covers the installed
    // version. Committing the target and re-checking the cut is the chaos
    // equivalent of MigrationDriver::CommitBarrier.
    DPR_RETURN_NOT_OK(Commit(b));
    return CheckCut();
  }

  Status DoOp(uint32_t si, WorkerId w, uint64_t key, bool withhold) {
    DprSession& session = *sessions_[si];
    if (session.needs_failure_handling()) {
      DPR_RETURN_NOT_OK(SyncSessions());
    }
    DprRequestHeader header = session.MakeHeader();
    Version version = kInvalidVersion;
    Status admit = workers_[w]->BeginBatch(header, &version);
    if (!admit.ok()) {
      // Rejected batches commit vacuously; the rejection response still
      // carries the worker's world-line so the session notices failures.
      DprResponseHeader reject;
      workers_[w]->FillResponse(
          kInvalidVersion,
          admit.IsAborted() ? DprResponseHeader::BatchStatus::kWorldLineShift
                            : DprResponseHeader::BatchStatus::kRetryLater,
          &reject);
      DprResponseHeader vacuous;
      session.RecordBatch(w, 1, vacuous);
      session.ObserveWatermark(w, reject);
      return Status::OK();
    }
    const uint64_t value = ++value_counter_;
    {
      auto store_session = stores_[w]->NewSession();
      Status us = store_session->Upsert(key, value);
      if (!us.ok()) {
        workers_[w]->EndBatch();
        return Violation("admitted upsert failed: " + us.ToString());
      }
    }
    workers_[w]->EndBatch();
    DprResponseHeader resp;
    workers_[w]->FillResponse(version, DprResponseHeader::BatchStatus::kOk,
                              &resp);
    history_[{w, key}].push_back(ValueWrite{version, value});
    const WorkerVersion now{w, version};
    if (session_last_[si].worker != kInvalidWorker &&
        !(session_last_[si] == now)) {
      MergeDependency(&shadow_[now], session_last_[si]);
    }
    if (withhold) {
      // Relaxed DPR: ops after a PENDING one do not depend on it
      // (IssuePending adds no dependency until the response is resolved),
      // so a withheld op must not become the source of shadow edges.
      const uint64_t start = session.IssuePending(w, 1);
      pendings_.push_back(
          PendingOp{si, start, w, resp, session.world_line()});
    } else {
      session_last_[si] = now;
      session.RecordBatch(w, 1, resp);
    }
    ++report_->ops;
    return Status::OK();
  }

  void ResolveOne() {
    if (pendings_.empty()) return;
    const size_t idx = rng_.Uniform(pendings_.size());
    const PendingOp p = pendings_[idx];
    pendings_.erase(pendings_.begin() + idx);
    if (sessions_[p.session]->world_line() != p.issued_wl) return;
    sessions_[p.session]->ResolvePending(p.start, p.resp);
  }

  Status Commit(WorkerId w) {
    // Workload-driven commits rotate through the image modes (every 4th
    // persisted as a full image, deltas in between) so every crash event in
    // the schedule lands on some chain position.
    const uint64_t n = commit_counter_++;
    return Commit(w, CheckpointHints{.index_image = true,
                                     .delta = n % 4 != 0});
  }

  Status Commit(WorkerId w, const CheckpointHints& hints) {
    Status s = workers_[w]->TryCommit(0, hints);
    if (!s.ok() && !s.IsBusy() && !s.IsRetryable()) {
      return Violation("TryCommit: " + s.ToString());
    }
    stores_[w]->WaitForCheckpoints();
    ++report_->commits;
    return Status::OK();
  }

  void Ping(uint32_t si, WorkerId w) {
    DprSession& session = *sessions_[si];
    DprRequestHeader header = session.MakeHeader();
    Version version = kInvalidVersion;
    if (workers_[w]->BeginBatch(header, &version).ok()) {
      workers_[w]->EndBatch();
      DprResponseHeader resp;
      workers_[w]->FillResponse(version,
                                DprResponseHeader::BatchStatus::kOk, &resp);
      session.ObserveWatermark(w, resp);
    }
  }

  /// Advances the cut through the deployed tracking plane, then checks
  /// P2 (dependency closure vs the shadow graph) and P1 (monotone commit
  /// points per session).
  Status CheckCut() {
    Status cs;
    for (int attempt = 0; attempt < 64; ++attempt) {
      cs = plane_->ComputeCut();
      if (cs.ok() || !cs.IsRetryable()) break;
      SleepMicros(100);
    }
    if (!cs.ok()) return Violation("ComputeCut: " + cs.ToString());
    DprCut cut;
    local_finder_->GetCut(nullptr, &cut);
    // P5: per-worker cut entries never regress — across checkpoints,
    // recoveries, coordinator crashes, and migration barriers alike. A
    // regression would renege on a guarantee some client already observed.
    Status p5 = cut_monitor_.Observe(cut);
    if (!p5.ok()) return Violation(p5.ToString());
    for (const auto& [wv, deps] : shadow_) {
      if (wv.version > CutVersion(cut, wv.worker)) continue;
      for (const auto& [dw, dv] : deps) {
        if (dv > CutVersion(cut, dw)) {
          std::string dump = " [cut:";
          for (const auto& [cw, cv] : cut) {
            dump += " " + std::to_string(cw) + "=" + std::to_string(cv);
          }
          dump += " rows:";
          for (const auto& [rw, rv] : metadata_->GetPersistedVersions()) {
            dump += " " + std::to_string(rw) + "=" + std::to_string(rv);
          }
          dump += "]";
          return Violation(
              "P2: cut includes " + std::to_string(wv.worker) + "-v" +
              std::to_string(wv.version) + " but not its dependency " +
              std::to_string(dw) + "-v" + std::to_string(dv) + dump);
        }
      }
    }
    return CheckCommitPoints();
  }

  Status CheckCommitPoints() {
    for (uint32_t si = 0; si < sessions_.size(); ++si) {
      if (sessions_[si]->needs_failure_handling()) {
        DPR_RETURN_NOT_OK(SyncSessions());
      }
      for (WorkerId w = 0; w < options_.workers; ++w) Ping(si, w);
      const uint64_t point = sessions_[si]->GetCommitPoint().prefix_end;
      if (point < last_commit_point_[si]) {
        return Violation("P1: session " + std::to_string(si) +
                         " commit point regressed " +
                         std::to_string(last_commit_point_[si]) + " -> " +
                         std::to_string(point));
      }
      last_commit_point_[si] = point;
    }
    return Status::OK();
  }

  /// P4 + value check: with faults disarmed, every operation must become
  /// accounted for (committed or rolled back) in bounded time, and every
  /// store must hold exactly the last surviving write per key.
  Status Drain() {
    report_->fault_report = FaultPlane::Instance().ReportString();
    FaultPlane::Instance().DisarmAll();
    for (const PendingOp& p : pendings_) {
      if (sessions_[p.session]->world_line() == p.issued_wl) {
        sessions_[p.session]->ResolvePending(p.start, p.resp);
      }
    }
    pendings_.clear();

    bool done = false;
    for (int round = 0; round < 300 && !done; ++round) {
      for (WorkerId w = 0; w < options_.workers; ++w) {
        DPR_RETURN_NOT_OK(Commit(w));
      }
      DPR_RETURN_NOT_OK(CheckCut());
      done = true;
      for (uint32_t si = 0; si < sessions_.size(); ++si) {
        const auto point = sessions_[si]->GetCommitPoint();
        // Rolled-back ops can be double-counted when the prefix later jumps
        // their seqno gap, hence >=.
        if (point.prefix_end + rolled_back_[si] <
                sessions_[si]->next_seqno() ||
            !point.excluded.empty()) {
          done = false;
        }
      }
    }
    if (!done) {
      return Violation("P4: operations never fully accounted for");
    }

    for (uint32_t w = 0; w < options_.workers; ++w) {
      auto reader = stores_[w]->NewSession();
      for (const auto& [wk, hist] : history_) {
        if (wk.first != w) continue;
        uint64_t got = 0;
        Status rs = reader->Read(wk.second, &got);
        if (hist.empty()) {
          if (!rs.IsNotFound()) {
            return Violation("value: rolled-back key " +
                             std::to_string(wk.second) + " resurfaced on " +
                             "worker " + std::to_string(w) + " (" +
                             rs.ToString() + ")");
          }
        } else if (!rs.ok()) {
          return Violation("value: surviving key " +
                           std::to_string(wk.second) + " missing on worker " +
                           std::to_string(w) + ": " + rs.ToString());
        } else if (got != hist.back().value) {
          return Violation(
              "value: worker " + std::to_string(w) + " key " +
              std::to_string(wk.second) + " holds " + std::to_string(got) +
              ", expected surviving write " +
              std::to_string(hist.back().value) +
              " (pre-/post-recovery state mixed)");
        }
      }
    }
    return Status::OK();
  }

  const ChaosOptions& options_;
  const ChaosSchedule& schedule_;
  ChaosReport* report_;
  Random rng_;

  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<DprFinder> local_finder_;
  std::unique_ptr<InMemoryNetwork> net_;
  std::unique_ptr<DprFinderServer> finder_server_;
  std::unique_ptr<RemoteDprFinder> remote_finder_;
  DprFinder* plane_ = nullptr;
  std::unique_ptr<ClusterManager> manager_;
  std::vector<std::unique_ptr<FasterStore>> stores_;
  std::vector<std::unique_ptr<DprWorker>> workers_;
  std::vector<std::unique_ptr<DprSession>> sessions_;

  std::vector<uint64_t> last_commit_point_;
  std::vector<uint64_t> rolled_back_;
  CutMonotonicityChecker cut_monitor_;
  std::vector<WorkerVersion> session_last_;
  std::map<WorkerVersion, DependencySet> shadow_;
  std::map<std::pair<uint32_t, uint64_t>, std::vector<ValueWrite>> history_;
  std::vector<PendingOp> pendings_;
  uint64_t value_counter_ = 0;
  uint64_t commit_counter_ = 0;
};

}  // namespace

Status RunChaos(const ChaosOptions& options, ChaosReport* report) {
  DPR_CHECK(report != nullptr);
  *report = ChaosReport{};
  report->schedule = ChaosSchedule::Generate(options);
  // Always print the seed: any failure below is replayable from this line.
  fprintf(stderr, "[chaos] %s\n", report->schedule.ToString().c_str());
  ScopedFaultPlane plane(options.seed);
  ChaosRunner runner(options, report);
  DPR_RETURN_NOT_OK(runner.Setup());
  return runner.Run();
}

}  // namespace dpr
