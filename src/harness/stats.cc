#include "harness/stats.h"

#include <algorithm>

namespace dpr {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string ResultTable::Fmt(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ResultTable::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    printf("\n");
  };
  print_row(columns_);
  std::string sep;
  for (size_t i = 0; i < columns_.size(); ++i) {
    sep.assign(widths[i], '-');
    printf("%s  ", sep.c_str());
  }
  printf("\n");
  for (const auto& row : rows_) print_row(row);
  fflush(stdout);
}

}  // namespace dpr
