#include "harness/stats.h"

#include <algorithm>

namespace dpr {

void TrackingPlaneStats::Print(const std::string& label) const {
  printf("tracking plane [%s]\n", label.c_str());
  printf("  dep tracker : records=%llu lock-free=%llu drains=%llu live=%llu\n",
         static_cast<unsigned long long>(dep_records),
         static_cast<unsigned long long>(dep_empty_records),
         static_cast<unsigned long long>(dep_drains),
         static_cast<unsigned long long>(dep_live_entries));
  printf("  finder core : ingested=%llu stale=%llu staged-peak=%llu "
         "cut-advances=%llu\n",
         static_cast<unsigned long long>(reports_ingested),
         static_cast<unsigned long long>(reports_stale),
         static_cast<unsigned long long>(staged_peak),
         static_cast<unsigned long long>(cut_advances));
  if (remote_batches_sent > 0 || remote_reports_enqueued > 0) {
    printf("  remote      : enqueued=%llu batches=%llu reports/batch=%.2f "
           "rejected=%llu retries=%llu snapshots=%llu\n",
           static_cast<unsigned long long>(remote_reports_enqueued),
           static_cast<unsigned long long>(remote_batches_sent),
           RemoteReportsPerBatch(),
           static_cast<unsigned long long>(remote_reports_rejected),
           static_cast<unsigned long long>(remote_send_retries),
           static_cast<unsigned long long>(remote_snapshot_refreshes));
  }
  fflush(stdout);
}

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string ResultTable::Fmt(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ResultTable::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    printf("\n");
  };
  print_row(columns_);
  std::string sep;
  for (size_t i = 0; i < columns_.size(); ++i) {
    sep.assign(widths[i], '-');
    printf("%s  ", sep.c_str());
  }
  printf("\n");
  for (const auto& row : rows_) print_row(row);
  fflush(stdout);
}

}  // namespace dpr
