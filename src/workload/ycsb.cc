#include "workload/ycsb.h"

namespace dpr {

YcsbWorkload::YcsbWorkload(const YcsbOptions& options)
    : options_(options), rng_(options.seed) {
  if (options_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfianGenerator>(options_.num_keys,
                                               options_.zipf_theta,
                                               options_.seed ^ 0x21bfDEADULL);
  }
}

uint64_t YcsbWorkload::NextKey() {
  if (zipf_ != nullptr) return zipf_->Next();
  return rng_.Uniform(options_.num_keys);
}

YcsbOp YcsbWorkload::Next() {
  YcsbOp op;
  op.key = NextKey();
  op.value = rng_.Next();
  const double roll = rng_.NextDouble();
  if (roll < options_.read_fraction) {
    op.type = YcsbOp::Type::kRead;
  } else if (roll < options_.read_fraction + options_.rmw_fraction) {
    op.type = YcsbOp::Type::kRmw;
  } else {
    op.type = YcsbOp::Type::kUpsert;
  }
  return op;
}

uint64_t YcsbWorkload::NextKeyOnShard(uint32_t shard, uint32_t num_shards) {
  // Rejection-sample; with hash sharding each draw hits with p = 1/shards.
  for (;;) {
    const uint64_t key = NextKey();
    if (ShardOf(key, num_shards) == shard) return key;
  }
}

}  // namespace dpr
