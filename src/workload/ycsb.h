#ifndef DPR_WORKLOAD_YCSB_H_
#define DPR_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>

#include "common/hash.h"
#include "common/random.h"

namespace dpr {

/// YCSB-style single-key workload generator (paper §7.1: YCSB-A with 8-byte
/// keys and values, described as R:BU read/blind-update mixes, uniform or
/// Zipfian(theta) key popularity). Deterministic from the seed.
struct YcsbOptions {
  uint64_t num_keys = 1 << 20;
  double read_fraction = 0.5;   // YCSB-A: 50:50
  double rmw_fraction = 0.0;    // carve read-modify-writes out of the updates
  double zipf_theta = 0.0;      // 0 = uniform; paper's skew: 0.99
  uint64_t seed = 42;
};

struct YcsbOp {
  enum class Type : uint8_t { kRead, kUpsert, kRmw };
  Type type;
  uint64_t key;
  uint64_t value;
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbOptions& options);

  YcsbOp Next();

  const YcsbOptions& options() const { return options_; }

  /// Keys group into virtual partitions (paper §5.3); a partition is the
  /// unit of ownership and migration.
  static constexpr uint32_t kNumPartitions = 64;
  static uint32_t PartitionOf(uint64_t key) {
    return static_cast<uint32_t>(Mix64(key ^ 0x5bd1e995) % kNumPartitions);
  }

  /// Default (pre-migration) owner of a partition.
  static uint32_t DefaultOwner(uint32_t partition, uint32_t num_shards) {
    return partition % num_shards;
  }

  /// The paper shards the key space by hash into equal chunks; with the
  /// default ownership assignment this is the shard of `key`.
  static uint32_t ShardOf(uint64_t key, uint32_t num_shards) {
    return DefaultOwner(PartitionOf(key), num_shards);
  }

  /// A key guaranteed to live on `shard` (for co-located local traffic).
  uint64_t NextKeyOnShard(uint32_t shard, uint32_t num_shards);

 private:
  uint64_t NextKey();

  YcsbOptions options_;
  Random rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace dpr

#endif  // DPR_WORKLOAD_YCSB_H_
