#ifndef DPR_FAULT_FAULT_PLANE_H_
#define DPR_FAULT_FAULT_PLANE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace dpr {

/// Canonical injection-point names. Each point is a probe compiled into a
/// production code path; a point fires only when the FaultPlane is enabled
/// AND a matching FaultRule is armed, so the disabled fast path is a single
/// relaxed atomic load. The full inventory (with the meaning of `scope` and
/// `param` at each point) is documented in DESIGN.md §4d.
namespace faults {
// Transports (scope = HashBytes of the peer name / address).
inline constexpr const char* kNetDrop = "net.drop";
inline constexpr const char* kNetDuplicate = "net.duplicate";
inline constexpr const char* kNetDelay = "net.delay";  // param = extra us
inline constexpr const char* kNetPartition = "net.partition";
// Storage devices (scope = HashBytes of the device name / worker id).
inline constexpr const char* kDevWriteFail = "device.write_fail";
inline constexpr const char* kDevTornWrite = "device.torn_write";
inline constexpr const char* kDevSlowFsync = "device.slow_fsync";  // param=us
// DPR finder service (scope = kAnyScope; the server is a singleton).
inline constexpr const char* kFinderRpcError = "finder.rpc_error";
// Cluster manager (scope = worker id): escalate a survivor's rollback into
// a full crash-and-restore mid-recovery.
inline constexpr const char* kClusterRollbackCrash = "cluster.rollback_crash";
}  // namespace faults

/// One armed fault. A rule matches an injection-point probe when the point
/// name is equal and the scope matches (kAnyScope matches everything).
/// Semantics of a matched probe, in order:
///   - the first `skip` hits pass through unharmed,
///   - at most `max_fires` hits fire,
///   - each remaining hit fires with `probability`.
struct FaultRule {
  std::string point;
  uint64_t scope = ~0ull;  // FaultPlane::kAnyScope
  double probability = 1.0;
  uint64_t skip = 0;
  uint64_t max_fires = ~0ull;
  uint64_t param = 0;  // point-specific knob (e.g. delay in microseconds)
};

/// Process-wide, seed-deterministic fault injector.
///
/// Determinism model: every rule keeps an atomic hit counter per matched
/// probe. The fire decision for hit number i is a pure hash of
/// (seed, point, scope, i), so the SET of hit indices that fire at a given
/// point is a function of the seed alone, independent of thread
/// interleaving. (Which thread draws which hit index still depends on the
/// schedule; chaos replay therefore compares generated fault *schedules*,
/// which are byte-identical, not per-thread execution traces.)
///
/// Usage:
///   ScopedFaultPlane plane(seed);
///   FaultPlane::Instance().Arm({.point = faults::kNetDrop,
///                               .probability = 0.2, .max_fires = 10});
/// and in the probed code path:
///   uint64_t delay_us = 0;
///   if (FaultPlane::Instance().ShouldFire(faults::kNetDelay, scope,
///                                         &delay_us)) { ... }
class FaultPlane {
 public:
  static constexpr uint64_t kAnyScope = ~0ull;

  static FaultPlane& Instance();

  /// Enables injection and resets all rules, counters, and the seed.
  void Enable(uint64_t seed);
  /// Disables injection; probes return to the zero-overhead fast path.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  void Arm(FaultRule rule);
  /// Removes every rule armed for `point`.
  void Disarm(std::string_view point);
  void DisarmAll();

  /// The probe: returns true when an armed rule matching (point, scope)
  /// decides to fire for this hit. On fire, `*param` (if non-null) receives
  /// the matched rule's param. Never fires while disabled.
  bool ShouldFire(std::string_view point, uint64_t scope = kAnyScope,
                  uint64_t* param = nullptr);

  /// Total probe hits / fires for a point since Enable (all rules summed).
  uint64_t hits(std::string_view point) const;
  uint64_t fires(std::string_view point) const;

  /// One line per armed rule: "point scope=S p=P hits=H fires=F".
  std::string ReportString() const;

 private:
  FaultPlane() = default;

  struct ArmedRule {
    explicit ArmedRule(FaultRule s) : spec(std::move(s)) {}
    FaultRule spec;
    // relaxed: probe-site counters. hits orders nothing (fetch_add only
    // claims an index for every_n matching); fires may transiently overshoot
    // max_fires by the number of concurrent probes — acceptable slack for a
    // test-only plane, not worth a CAS loop on the probe hot path.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };

  // Probe fast path: a single relaxed load when the plane is disabled (the
  // common case); arming happens-before probes via the mu_ acquire inside
  // ShouldFire, so enabled_ itself carries no ordering duty.
  std::atomic<bool> enabled_{false};
  // Atomic (not GUARDED_BY(mu_)) because the public seed() accessor reads it
  // with no lock while probes run; relaxed is enough — Enable() publishes it
  // before flipping enabled_ with release, which every probe acquires… via
  // the mu_ acquire in ShouldFire, and test readers only need *a* value.
  std::atomic<uint64_t> seed_{0};
  mutable Mutex mu_{LockRank::kFault, "fault.plane"};
  // unique_ptr: ArmedRule holds atomics and must not relocate while probe
  // threads hold a reference.
  std::vector<std::unique_ptr<ArmedRule>> rules_ GUARDED_BY(mu_);
};

/// RAII Enable/Disable, for tests and the chaos harness.
class ScopedFaultPlane {
 public:
  explicit ScopedFaultPlane(uint64_t seed) {
    FaultPlane::Instance().Enable(seed);
  }
  ~ScopedFaultPlane() { FaultPlane::Instance().Disable(); }

  ScopedFaultPlane(const ScopedFaultPlane&) = delete;
  ScopedFaultPlane& operator=(const ScopedFaultPlane&) = delete;
};

}  // namespace dpr

#endif  // DPR_FAULT_FAULT_PLANE_H_
