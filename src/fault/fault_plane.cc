#include "fault/fault_plane.h"

#include "common/hash.h"

namespace dpr {

namespace {

// Pure fire decision for hit number `idx` of a (seed, point, scope) stream:
// a threshold test on a mixed 64-bit hash, so each hit index draws an
// independent uniform variate that is reproducible from the seed alone.
bool HashDecision(uint64_t seed, uint64_t point_hash, uint64_t scope,
                  uint64_t idx, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const uint64_t mixed =
      Mix64(seed ^ Mix64(point_hash) ^ Mix64(scope * 0x9e3779b97f4a7c15ULL) ^
            idx);
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

FaultPlane& FaultPlane::Instance() {
  static FaultPlane* plane = new FaultPlane();
  return *plane;
}

void FaultPlane::Enable(uint64_t seed) {
  MutexLock guard(mu_);
  seed_.store(seed, std::memory_order_relaxed);
  rules_.clear();
  enabled_.store(true, std::memory_order_release);
}

void FaultPlane::Disable() {
  enabled_.store(false, std::memory_order_release);
  MutexLock guard(mu_);
  rules_.clear();
}

void FaultPlane::Arm(FaultRule rule) {
  MutexLock guard(mu_);
  rules_.push_back(std::make_unique<ArmedRule>(std::move(rule)));
}

void FaultPlane::Disarm(std::string_view point) {
  MutexLock guard(mu_);
  for (auto it = rules_.begin(); it != rules_.end();) {
    if ((*it)->spec.point == point) {
      it = rules_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultPlane::DisarmAll() {
  MutexLock guard(mu_);
  rules_.clear();
}

bool FaultPlane::ShouldFire(std::string_view point, uint64_t scope,
                            uint64_t* param) {
  if (!enabled()) return false;
  MutexLock guard(mu_);
  const uint64_t point_hash = HashBytes(point.data(), point.size());
  for (auto& rule : rules_) {
    const FaultRule& spec = rule->spec;
    if (spec.point != point) continue;
    if (spec.scope != kAnyScope && scope != kAnyScope && spec.scope != scope) {
      continue;
    }
    const uint64_t idx = rule->hits.fetch_add(1, std::memory_order_relaxed);
    if (idx < spec.skip) continue;
    if (rule->fires.load(std::memory_order_relaxed) >= spec.max_fires) {
      continue;
    }
    if (!HashDecision(seed_.load(std::memory_order_relaxed), point_hash,
                      spec.scope, idx, spec.probability)) {
      continue;
    }
    rule->fires.fetch_add(1, std::memory_order_relaxed);
    if (param != nullptr) *param = spec.param;
    return true;
  }
  return false;
}

uint64_t FaultPlane::hits(std::string_view point) const {
  MutexLock guard(mu_);
  uint64_t total = 0;
  for (const auto& rule : rules_) {
    if (rule->spec.point == point) {
      total += rule->hits.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t FaultPlane::fires(std::string_view point) const {
  MutexLock guard(mu_);
  uint64_t total = 0;
  for (const auto& rule : rules_) {
    if (rule->spec.point == point) {
      total += rule->fires.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::string FaultPlane::ReportString() const {
  MutexLock guard(mu_);
  std::string out;
  for (const auto& rule : rules_) {
    const FaultRule& spec = rule->spec;
    out += spec.point;
    if (spec.scope != kAnyScope) {
      out += " scope=" + std::to_string(spec.scope);
    }
    out += " p=" + std::to_string(spec.probability);
    out += " hits=" + std::to_string(rule->hits.load());
    out += " fires=" + std::to_string(rule->fires.load());
    out += "\n";
  }
  return out;
}

}  // namespace dpr
