#include "net/inmemory_net.h"

#include <future>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "fault/fault_plane.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct InMemNetMetrics {
  Counter* requests;
  Gauge* queue_depth;
  Gauge* queue_peak;
};

const InMemNetMetrics& Metrics() {
  static const InMemNetMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return InMemNetMetrics{r.counter("net.inmemory.requests"),
                           r.gauge("net.inmemory.queue_depth"),
                           r.gauge("net.inmemory.queue_peak")};
  }();
  return m;
}

}  // namespace

Status RpcConnection::Call(Slice request, std::string* response) {
  std::promise<Status> done;
  auto future = done.get_future();
  CallAsync(request.ToString(), [&](Status s, Slice resp) {
    if (s.ok() && response != nullptr) response->assign(resp.data(),
                                                        resp.size());
    done.set_value(std::move(s));
  });
  return future.get();
}

// ------------------------------------------------------------------- Server

class InMemoryNetwork::Server : public RpcServer {
 public:
  Server(InMemoryNetwork* net, std::string name, InMemoryNetOptions options)
      : net_(net), name_(std::move(name)), options_(options) {}

  ~Server() override {
    Stop();
    MutexLock guard(net_->mu_);
    net_->servers_.erase(name_);
  }

  Status Start(RpcHandler handler) override {
    MutexLock guard(mu_);
    if (running_) return Status::Busy("server already started");
    handler_ = std::move(handler);
    running_ = true;
    stop_ = false;
    for (uint32_t i = 0; i < options_.server_threads; ++i) {
      threads_.emplace_back([this] { DispatchLoop(); });
    }
    return Status::OK();
  }

  void Stop() override {
    {
      MutexLock guard(mu_);
      if (!running_) return;
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) t.join();
    threads_.clear();
    // Fail any stragglers so callers do not hang.
    std::deque<Item> leftover;
    {
      MutexLock guard(mu_);
      leftover.swap(queue_);
      running_ = false;
    }
    for (auto& item : leftover) {
      item.callback(Status::Unavailable("server stopped"), Slice());
    }
  }

  std::string address() const override { return name_; }

  void Enqueue(std::string request, RpcConnection::ResponseCallback callback,
               uint64_t deliver_at_us) {
    bool accepted = false;
    {
      MutexLock guard(mu_);
      if (running_ && !stop_) {
        queue_.push_back(Item{std::move(request), std::move(callback),
                              deliver_at_us});
        const auto depth = static_cast<int64_t>(queue_.size());
        Metrics().queue_depth->Set(depth);
        Metrics().queue_peak->UpdateMax(depth);
        accepted = true;
      }
    }
    Metrics().requests->Add();
    if (!accepted) {
      callback(Status::Unavailable("server not running"), Slice());
      return;
    }
    cv_.NotifyOne();
  }

 private:
  struct Item {
    std::string request;
    RpcConnection::ResponseCallback callback;
    uint64_t deliver_at_us;
  };

  void DispatchLoop() {
    std::string response;
    for (;;) {
      Item item;
      {
        MutexLock lock(mu_);
        cv_.Wait(mu_, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        item = std::move(queue_.front());
        queue_.pop_front();
        Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
      }
      // Injected one-way latency: wait out the remaining delivery delay.
      const uint64_t now = NowMicros();
      if (item.deliver_at_us > now) SleepMicros(item.deliver_at_us - now);
      response.clear();
      handler_(Slice(item.request), &response);
      item.callback(Status::OK(), Slice(response));
    }
  }

  InMemoryNetwork* net_;
  const std::string name_;
  const InMemoryNetOptions options_;
  Mutex mu_{LockRank::kTransport, "net.inmemory.server"};
  CondVar cv_;
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  // Written once in Start() before the dispatcher threads are spawned (thread
  // creation publishes it); read lock-free in DispatchLoop thereafter.
  RpcHandler handler_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
};

// --------------------------------------------------------------- Connection

class InMemoryNetwork::Connection : public RpcConnection {
 public:
  Connection(InMemoryNetwork* net, std::string name, uint64_t latency_us)
      : net_(net), name_(std::move(name)), latency_us_(latency_us) {}

  void CallAsync(std::string request, ResponseCallback callback) override {
    Server* server = nullptr;
    {
      MutexLock guard(net_->mu_);
      auto it = net_->servers_.find(name_);
      if (it != net_->servers_.end()) server = it->second;
    }
    if (server == nullptr) {
      callback(Status::Unavailable("no such endpoint: " + name_), Slice());
      return;
    }
    // Model the full round trip as a single pre-handling delay.
    uint64_t deliver_at = latency_us_ > 0 ? NowMicros() + 2 * latency_us_ : 0;
    FaultPlane& plane = FaultPlane::Instance();
    if (plane.enabled()) {
      const uint64_t scope = HashBytes(name_.data(), name_.size());
      if (plane.ShouldFire(faults::kNetPartition, scope)) {
        callback(Status::Transient("injected partition to " + name_),
                 Slice());
        return;
      }
      if (plane.ShouldFire(faults::kNetDrop, scope)) {
        callback(Status::TimedOut("injected drop to " + name_), Slice());
        return;
      }
      uint64_t extra_us = 0;
      if (plane.ShouldFire(faults::kNetDelay, scope, &extra_us)) {
        if (deliver_at == 0) deliver_at = NowMicros();
        deliver_at += extra_us;
      }
      if (plane.ShouldFire(faults::kNetDuplicate, scope)) {
        // The duplicate is handled by the server but its response goes
        // nowhere, mirroring a retransmit whose reply loses the id race.
        server->Enqueue(request, [](Status, Slice) {}, deliver_at);
      }
    }
    server->Enqueue(std::move(request), std::move(callback), deliver_at);
  }

 private:
  InMemoryNetwork* net_;
  const std::string name_;
  const uint64_t latency_us_;
};

// ------------------------------------------------------------------ Network

InMemoryNetwork::InMemoryNetwork(InMemoryNetOptions options)
    : options_(options) {}

InMemoryNetwork::~InMemoryNetwork() {
  MutexLock guard(mu_);
  DPR_CHECK_MSG(servers_.empty(),
                "InMemoryNetwork destroyed with live servers");
}

std::unique_ptr<RpcServer> InMemoryNetwork::CreateServer(
    const std::string& name) {
  auto server = std::make_unique<Server>(this, name, options_);
  MutexLock guard(mu_);
  DPR_CHECK_MSG(servers_.emplace(name, server.get()).second,
                "duplicate endpoint %s", name.c_str());
  return server;
}

std::unique_ptr<RpcConnection> InMemoryNetwork::Connect(
    const std::string& name) {
  return std::make_unique<Connection>(this, name, options_.latency_us);
}

}  // namespace dpr
