#include "net/inmemory_net.h"

#include <future>
#include <memory>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "fault/fault_plane.h"
#include "net/executor.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct InMemNetMetrics {
  Counter* requests;
  Gauge* queue_depth;
  Gauge* queue_peak;
};

const InMemNetMetrics& Metrics() {
  static const InMemNetMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return InMemNetMetrics{r.counter("net.inmemory.requests"),
                           r.gauge("net.inmemory.queue_depth"),
                           r.gauge("net.inmemory.queue_peak")};
  }();
  return m;
}

}  // namespace

Status RpcConnection::Call(Slice request, std::string* response) {
  std::promise<Status> done;
  auto future = done.get_future();
  CallAsync(request.ToString(), [&](Status s, Slice resp) {
    if (s.ok() && response != nullptr) response->assign(resp.data(),
                                                        resp.size());
    done.set_value(std::move(s));
  });
  return future.get();
}

// ------------------------------------------------------------------- Server

class InMemoryNetwork::Server : public RpcServer {
 public:
  Server(InMemoryNetwork* net, std::string name, InMemoryNetOptions options)
      : net_(net), name_(std::move(name)), options_(options) {}

  ~Server() override {
    Stop();
    MutexLock guard(net_->mu_);
    net_->servers_.erase(name_);
  }

  Status Start(RpcHandler handler) override {
    MutexLock guard(mu_);
    if (running_) return Status::Busy("server already started");
    handler_ = std::move(handler);
    executor_ = std::make_shared<Executor>(ExecutorOptions{
        options_.server_threads, options_.queue_capacity,
        "net.inmemory.executor"});
    executor_->Start();
    running_ = true;
    stopping_ = false;
    return Status::OK();
  }

  void Stop() override {
    std::shared_ptr<Executor> executor;
    {
      MutexLock guard(mu_);
      if (!running_) return;
      // Accepted-but-unrun calls observe this and fail fast instead of
      // running the handler: the executor's drain-on-shutdown guarantee
      // turns into "every callback fires", never "every request executes".
      stopping_ = true;
      executor = executor_;
    }
    executor->Shutdown();
    MutexLock guard(mu_);
    running_ = false;
    executor_.reset();
  }

  std::string address() const override { return name_; }

  void Enqueue(std::string request, RpcConnection::ResponseCallback callback,
               uint64_t deliver_at_us) {
    Metrics().requests->Add();
    std::shared_ptr<Executor> executor;
    {
      MutexLock guard(mu_);
      if (running_ && !stopping_) executor = executor_;
    }
    if (executor == nullptr) {
      callback(Status::Unavailable("server not running"), Slice());
      return;
    }
    // The call state rides in a shared_ptr so a submission rejected by a
    // racing Shutdown still owns the callback and can fail it.
    auto call = std::make_shared<Call>(
        Call{std::move(request), std::move(callback), deliver_at_us});
    const bool accepted = executor->Submit([this, call] { RunCall(*call); });
    if (!accepted) {
      call->callback(Status::Unavailable("server stopped"), Slice());
      return;
    }
    const auto depth = static_cast<int64_t>(executor->queue_depth());
    Metrics().queue_depth->Set(depth);
    Metrics().queue_peak->UpdateMax(depth);
  }

 private:
  struct Call {
    std::string request;
    RpcConnection::ResponseCallback callback;
    uint64_t deliver_at_us;
  };

  // Executor worker thread.
  void RunCall(Call& call) {
    bool dead;
    {
      MutexLock guard(mu_);
      Metrics().queue_depth->Set(
          executor_ ? static_cast<int64_t>(executor_->queue_depth()) : 0);
      dead = stopping_ || !running_;
    }
    if (dead) {
      call.callback(Status::Unavailable("server stopped"), Slice());
      return;
    }
    // Injected one-way latency: wait out the remaining delivery delay.
    const uint64_t now = NowMicros();
    if (call.deliver_at_us > now) SleepMicros(call.deliver_at_us - now);
    std::string response;
    handler_(Slice(call.request), &response);
    call.callback(Status::OK(), Slice(response));
  }

  InMemoryNetwork* net_;
  const std::string name_;
  const InMemoryNetOptions options_;
  Mutex mu_{LockRank::kTransport, "net.inmemory.server"};
  // Swapped whole on Start/Stop; callers snapshot a ref under mu_ so a
  // racing Stop cannot destroy it mid-Submit.
  std::shared_ptr<Executor> executor_ GUARDED_BY(mu_);
  // Written once in Start() before the executor workers are spawned (thread
  // creation publishes it); read lock-free in RunCall thereafter.
  RpcHandler handler_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
};

// --------------------------------------------------------------- Connection

class InMemoryNetwork::Connection : public RpcConnection {
 public:
  Connection(InMemoryNetwork* net, std::string name, uint64_t latency_us)
      : net_(net), name_(std::move(name)), latency_us_(latency_us) {}

  void CallAsync(std::string request, ResponseCallback callback) override {
    Server* server = nullptr;
    {
      MutexLock guard(net_->mu_);
      auto it = net_->servers_.find(name_);
      if (it != net_->servers_.end()) server = it->second;
    }
    if (server == nullptr) {
      callback(Status::Unavailable("no such endpoint: " + name_), Slice());
      return;
    }
    // Model the full round trip as a single pre-handling delay.
    uint64_t deliver_at = latency_us_ > 0 ? NowMicros() + 2 * latency_us_ : 0;
    FaultPlane& plane = FaultPlane::Instance();
    if (plane.enabled()) {
      const uint64_t scope = HashBytes(name_.data(), name_.size());
      if (plane.ShouldFire(faults::kNetPartition, scope)) {
        callback(Status::Transient("injected partition to " + name_),
                 Slice());
        return;
      }
      if (plane.ShouldFire(faults::kNetDrop, scope)) {
        callback(Status::TimedOut("injected drop to " + name_), Slice());
        return;
      }
      uint64_t extra_us = 0;
      if (plane.ShouldFire(faults::kNetDelay, scope, &extra_us)) {
        if (deliver_at == 0) deliver_at = NowMicros();
        deliver_at += extra_us;
      }
      if (plane.ShouldFire(faults::kNetDuplicate, scope)) {
        // The duplicate is handled by the server but its response goes
        // nowhere, mirroring a retransmit whose reply loses the id race.
        server->Enqueue(request, [](Status, Slice) {}, deliver_at);
      }
    }
    server->Enqueue(std::move(request), std::move(callback), deliver_at);
  }

 private:
  InMemoryNetwork* net_;
  const std::string name_;
  const uint64_t latency_us_;
};

// ------------------------------------------------------------------ Network

InMemoryNetwork::InMemoryNetwork(InMemoryNetOptions options)
    : options_(options) {}

InMemoryNetwork::~InMemoryNetwork() {
  MutexLock guard(mu_);
  DPR_CHECK_MSG(servers_.empty(),
                "InMemoryNetwork destroyed with live servers");
}

std::unique_ptr<RpcServer> InMemoryNetwork::CreateServer(
    const std::string& name) {
  auto server = std::make_unique<Server>(this, name, options_);
  MutexLock guard(mu_);
  DPR_CHECK_MSG(servers_.emplace(name, server.get()).second,
                "duplicate endpoint %s", name.c_str());
  return server;
}

std::unique_ptr<RpcConnection> InMemoryNetwork::Connect(
    const std::string& name) {
  return std::make_unique<Connection>(this, name, options_.latency_us);
}

}  // namespace dpr
