#include "net/executor.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

// Call-site-cached registry pointers, shared by every Executor instance:
// gauges use Add/Sub deltas so concurrent executors aggregate instead of
// clobbering each other.
struct ExecutorMetrics {
  Counter* tasks;
  Counter* submit_rejected;
  Gauge* queue_depth;
  Gauge* queue_peak;
  Gauge* threads;
};

const ExecutorMetrics& Metrics() {
  static const ExecutorMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return ExecutorMetrics{r.counter("net.executor.tasks"),
                           r.counter("net.executor.submit_rejected"),
                           r.gauge("net.executor.queue_depth"),
                           r.gauge("net.executor.queue_peak"),
                           r.gauge("net.executor.threads")};
  }();
  return m;
}

}  // namespace

Executor::Executor(ExecutorOptions options) : options_(std::move(options)) {
  DPR_CHECK_MSG(options_.threads > 0, "executor needs at least one thread");
  DPR_CHECK_MSG(options_.queue_capacity > 0, "executor queue capacity is 0");
}

Executor::~Executor() { Shutdown(); }

void Executor::Start() {
  MutexLock lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  for (uint32_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Metrics().threads->Add(options_.threads);
}

void Executor::Shutdown() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  space_cv_.NotifyAll();
  for (auto& t : workers) t.join();
  if (!workers.empty()) {
    Metrics().threads->Sub(static_cast<int64_t>(workers.size()));
  }
}

bool Executor::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    space_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      Metrics().submit_rejected->Add();
      return false;
    }
    queue_.push_back(std::move(task));
    const auto depth = static_cast<int64_t>(queue_.size());
    Metrics().queue_depth->Add(1);
    Metrics().queue_peak->UpdateMax(depth);
  }
  work_cv_.NotifyOne();
  return true;
}

bool Executor::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      Metrics().submit_rejected->Add();
      return false;
    }
    queue_.push_back(std::move(task));
    const auto depth = static_cast<int64_t>(queue_.size());
    Metrics().queue_depth->Add(1);
    Metrics().queue_peak->UpdateMax(depth);
  }
  work_cv_.NotifyOne();
  return true;
}

size_t Executor::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      // Drain-before-exit: accepted tasks always run, even during shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Sub(1);
    }
    space_cv_.NotifyOne();
    Metrics().tasks->Add();
    task();
  }
}

}  // namespace dpr
