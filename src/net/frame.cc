#include "net/frame.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "fault/fault_plane.h"
#include "obs/metrics.h"

namespace dpr {
namespace internal {

Status MapSocketError(const char* op, int err) {
  const std::string msg = std::string(op) + ": " + strerror(err);
  switch (err) {
    case ECONNRESET:
    case EPIPE:
    case ECONNREFUSED:
    case ECONNABORTED:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return Status::Transient(msg);
    case ETIMEDOUT:
      return Status::TimedOut(msg);
    default:
      return Status::IOError(msg);
  }
}

const TcpCounters& Stats() {
  static const TcpCounters counters = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return TcpCounters{r.counter("net.tcp.frames_sent"),
                       r.counter("net.tcp.frames_received"),
                       r.counter("net.tcp.short_writes"),
                       r.counter("net.tcp.eagain_waits"),
                       r.counter("net.tcp.poisoned"),
                       r.counter("net.tcp.writev_calls"),
                       r.counter("net.tcp.writev_frames"),
                       r.counter("net.tcp.recv_calls"),
                       r.counter("net.tcp.accepted"),
                       r.gauge("net.tcp.output_queue_bytes"),
                       r.gauge("net.tcp.server_conns"),
                       r.counter("net.uring.sqe_batches"),
                       r.counter("net.uring.cqe_reaped"),
                       r.counter("net.uring.buffer_ring_exhausted"),
                       r.counter("net.uring.resubmits"),
                       r.counter("net.uring.fallbacks")};
  }();
  return counters;
}

void NoteFrameReceived() { Stats().frames_received->Add(); }

void ConfigureSocket(int fd, SocketKind kind) {
  int one = 1;
  if (kind == SocketKind::kListener) {
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

OutFrame MakeFrame(uint64_t id, std::string payload) {
  OutFrame f;
  std::string header;
  header.reserve(kFrameHeader);
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  PutFixed64(&header, id);
  memcpy(f.header, header.data(), kFrameHeader);
  f.id = id;
  f.payload = std::move(payload);
  return f;
}

int BuildIovecs(std::deque<OutFrame>& out, struct iovec* iov, int* iovcnt,
                size_t* bytes) {
  int n = 0;
  int frames = 0;
  size_t total = 0;
  for (OutFrame& f : out) {
    if (n + 2 > kMaxIov) break;
    size_t off = f.offset;
    if (off < kFrameHeader) {
      iov[n].iov_base = f.header + off;
      iov[n].iov_len = kFrameHeader - off;
      total += iov[n].iov_len;
      ++n;
      off = 0;
    } else {
      off -= kFrameHeader;
    }
    if (f.payload.size() > off) {
      iov[n].iov_base = f.payload.data() + off;
      iov[n].iov_len = f.payload.size() - off;
      total += iov[n].iov_len;
      ++n;
    }
    ++frames;
  }
  *iovcnt = n;
  *bytes = total;
  return frames;
}

size_t ConsumeWritten(std::deque<OutFrame>* out, size_t wrote) {
  size_t completed = 0;
  while (wrote > 0 && !out->empty()) {
    OutFrame& f = out->front();
    const size_t take = std::min(wrote, f.remaining());
    f.offset += take;
    wrote -= take;
    if (f.remaining() == 0) {
      out->pop_front();
      ++completed;
    }
  }
  return completed;
}

bool ApplyClientNetFaults(uint64_t peer_scope,
                          const RpcConnection::ResponseCallback& callback,
                          bool* duplicate) {
  *duplicate = false;
  FaultPlane& plane = FaultPlane::Instance();
  if (!plane.enabled()) return true;
  if (plane.ShouldFire(faults::kNetPartition, peer_scope)) {
    callback(Status::Transient("injected partition"), Slice());
    return false;
  }
  if (plane.ShouldFire(faults::kNetDrop, peer_scope)) {
    callback(Status::TimedOut("injected drop"), Slice());
    return false;
  }
  uint64_t delay_us = 0;
  if (plane.ShouldFire(faults::kNetDelay, peer_scope, &delay_us)) {
    // Delays the caller rather than the frame: the in-order byte stream has
    // no per-frame timer, and every DPR client issues from a dedicated
    // flusher/retry thread that tolerates blocking.
    SleepMicros(delay_us);
  }
  *duplicate = plane.ShouldFire(faults::kNetDuplicate, peer_scope);
  return true;
}

}  // namespace internal
}  // namespace dpr
