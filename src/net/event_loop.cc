#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct LoopMetrics {
  Counter* wakeups;       // epoll_wait returns with >= 1 ready event
  Counter* posted_tasks;  // closures handed to loop threads
  Gauge* threads;         // live loop threads across all EventLoops
};

const LoopMetrics& Metrics() {
  static const LoopMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return LoopMetrics{r.counter("net.loop.wakeups"),
                       r.counter("net.loop.posted_tasks"),
                       r.gauge("net.loop.threads")};
  }();
  return m;
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") + strerror(errno));
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError(std::string("eventfd: ") + strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake channel
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           strerror(errno));
  }
  stop_.store(false, std::memory_order_relaxed);
  {
    MutexLock lock(post_mu_);
    accepting_posts_ = true;
  }
  thread_ = std::thread([this] { Run(); });
  Metrics().threads->Add(1);
  return Status::OK();
}

void EventLoop::Stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(post_mu_);
    accepting_posts_ = false;
  }
  stop_.store(true, std::memory_order_relaxed);
  Wake();
  thread_.join();
  Metrics().threads->Sub(1);
  {
    MutexLock lock(post_mu_);
    posted_.clear();
  }
  close(wake_fd_);
  close(epoll_fd_);
  wake_fd_ = -1;
  epoll_fd_ = -1;
}

Status EventLoop::Add(int fd, uint32_t events, Handler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") + strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events, Handler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(mod): ") + strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

bool EventLoop::Post(std::function<void()> fn) {
  {
    MutexLock lock(post_mu_);
    if (!accepting_posts_) return false;
    posted_.push_back(std::move(fn));
  }
  Metrics().posted_tasks->Add();
  Wake();
  return true;
}

void EventLoop::Wake() {
  if (wake_pending_.exchange(true, std::memory_order_relaxed)) return;
  const uint64_t one = 1;
  // The loop clears wake_pending_ before reading the eventfd, so a Post
  // racing the drain re-arms the wakeup rather than losing it.
  // dprlint: allowed(net-raw-write) eventfd nudge, not a stream write.
  ssize_t n = write(wake_fd_, &one, sizeof(one));
  (void)n;  // eventfd writes cannot short-write; ENOSPC/EAGAIN both mean
            // "already signaled", which is exactly what we wanted.
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents,
                             /*timeout_ms=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      DPR_ERROR("epoll_wait: %s", strerror(errno));
      return;
    }
    if (n > 0) Metrics().wakeups->Add();
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        // Wake channel: clear the pending flag first so a concurrent Post
        // after the eventfd read still produces a wakeup.
        wake_pending_.store(false, std::memory_order_relaxed);
        uint64_t drained;
        ssize_t r = read(wake_fd_, &drained, sizeof(drained));
        (void)r;
        continue;
      }
      static_cast<Handler*>(events[i].data.ptr)->OnReady(events[i].events);
    }
    DrainPosted();
  }
}

}  // namespace dpr
