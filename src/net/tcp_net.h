#ifndef DPR_NET_TCP_NET_H_
#define DPR_NET_TCP_NET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/rpc.h"

namespace dpr {

/// Real-socket transport (loopback on one box reproduces the paper's
/// multi-process shard deployment). Frames are
/// [u32 payload-length][u64 request-id][payload]; requests pipeline freely
/// and responses are matched by id.

/// Creates a TCP server bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port; address() reports the bound "host:port").
std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port = 0);

/// Connects to "host:port" as produced by RpcServer::address().
Status ConnectTcp(const std::string& address,
                  std::unique_ptr<RpcConnection>* out);

}  // namespace dpr

#endif  // DPR_NET_TCP_NET_H_
