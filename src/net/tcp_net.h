#ifndef DPR_NET_TCP_NET_H_
#define DPR_NET_TCP_NET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "net/rpc.h"

namespace dpr {

/// Real-socket transport (loopback on one box reproduces the paper's
/// multi-process shard deployment). Frames are
/// [u32 payload-length][u64 request-id][payload]; requests pipeline freely
/// and responses are matched by id.

/// Creates a TCP server bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port; address() reports the bound "host:port").
std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port = 0);

/// Connects to "host:port" as produced by RpcServer::address().
Status ConnectTcp(const std::string& address,
                  std::unique_ptr<RpcConnection>* out);

namespace internal {

/// Loop primitives under the framing layer, exposed for regression tests
/// (tests/tcp_partial_write_test.cc drives them over a socketpair with a
/// tiny SO_SNDBUF). Both retry EINTR, and block on poll() when a
/// non-blocking fd reports EAGAIN/EWOULDBLOCK, so a short transfer never
/// surfaces as an error. `transferred` (optional) reports bytes moved
/// before any failure — the framing layer uses it to detect a torn frame,
/// which must poison the connection (a length-prefixed stream cannot
/// resynchronize mid-frame).
Status TcpReadFully(int fd, void* buf, size_t n,
                    size_t* transferred = nullptr);
Status TcpWriteFully(int fd, const void* buf, size_t n,
                     size_t* transferred = nullptr);

}  // namespace internal

}  // namespace dpr

#endif  // DPR_NET_TCP_NET_H_
