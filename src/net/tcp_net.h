#ifndef DPR_NET_TCP_NET_H_
#define DPR_NET_TCP_NET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "net/rpc.h"

struct iovec;  // <sys/uio.h>

namespace dpr {

/// Transport backend selector, runtime-resolved like the storage plane's
/// IoEngineKind: kAuto picks io_uring when the build compiled it in AND the
/// kernel supports the required feature set (multishot accept/recv +
/// provided buffer rings, ~6.0+), otherwise epoll. An explicit kIoUring
/// request that cannot be served falls back to epoll and bumps
/// `net.uring.fallbacks` — callers never get a null transport.
enum class NetBackend {
  kAuto,
  kEpoll,
  kIoUring,
};

/// Real-socket transport (loopback on one box reproduces the paper's
/// multi-process shard deployment). Frames are
/// [u32 payload-length][u64 request-id][payload]; requests pipeline freely
/// and responses are matched by id.
///
/// Server architecture (both backends): a fixed set of I/O threads own the
/// sockets (connections pinned round-robin), decode frames, and hand
/// execution to a shared bounded Executor, so server thread count is
/// O(io_threads + executor_threads) regardless of connection count and a
/// slow handler never stalls unrelated connections. Responses queue per
/// connection and are flushed vectored — every frame ready at flush time
/// coalesces into one sendmsg syscall (epoll) or one SENDMSG SQE (uring),
/// header + payload iovecs pointed at the queued frames in place. A
/// connection whose output queue exceeds its byte budget stops being read
/// until the queue drains below half the budget (backpressure hysteresis;
/// see internal::ReadGate).
struct TcpServerOptions {
  /// Event-loop threads owning sockets (epoll loops or uring rings). The
  /// listener lives on loop 0.
  uint32_t io_threads = 2;
  /// Shared request-executor worker threads.
  uint32_t executor_threads = 2;
  /// Bounded executor intake; decoded requests beyond this throttle reads.
  size_t executor_queue_capacity = 4096;
  /// Per-connection output-queue byte budget: above it the connection's
  /// reads pause, below half of it they resume.
  size_t max_output_queue_bytes = 4 << 20;
  /// Transport backend; kAuto resolves at Start time.
  NetBackend backend = NetBackend::kAuto;
};

struct TcpClientOptions {
  /// Transport backend for the connection's I/O; kAuto resolves at connect
  /// time. io_uring clients share one process-wide ring loop thread
  /// (vs two dedicated threads per epoll connection).
  NetBackend backend = NetBackend::kAuto;
};

/// Creates a TCP server bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port; address() reports the bound "host:port").
std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port = 0);
std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port,
                                         const TcpServerOptions& options);

/// Connects to "host:port" as produced by RpcServer::address(). The client
/// mirrors the server's write path: CallAsync enqueues frames and a single
/// per-connection flush (thread or SQE) coalesces everything queued into
/// one vectored write.
Status ConnectTcp(const std::string& address,
                  std::unique_ptr<RpcConnection>* out);
Status ConnectTcp(const std::string& address, const TcpClientOptions& options,
                  std::unique_ptr<RpcConnection>* out);

/// Applies the kAuto/fallback rules: returns the backend that would
/// actually serve a request for `requested` on this kernel (kEpoll or
/// kIoUring, never kAuto). Bench/test labeling helper.
NetBackend ResolveNetBackend(NetBackend requested);

/// Whether the io_uring transport backend is compiled in AND this kernel
/// supports every feature it needs (ring setup, multishot accept/recv,
/// provided buffer rings, async cancel). Cached after the first call.
bool NetUringSupported();

namespace internal {

/// Loop primitives under the framing layer, exposed for regression tests
/// (tests/tcp_partial_write_test.cc drives them over a socketpair with a
/// tiny SO_SNDBUF). All retry EINTR, and block on poll() when a
/// non-blocking fd reports EAGAIN/EWOULDBLOCK, so a short transfer never
/// surfaces as an error. `transferred` (optional) reports bytes moved
/// before any failure — the framing layer uses it to detect a torn frame,
/// which must poison the connection (a length-prefixed stream cannot
/// resynchronize mid-frame).
Status TcpReadFully(int fd, void* buf, size_t n,
                    size_t* transferred = nullptr);
Status TcpWriteFully(int fd, const void* buf, size_t n,
                     size_t* transferred = nullptr);
/// Vectored variant used by the frame-coalescing flush paths. `iov` is
/// consumed destructively (bases/lengths advance past written bytes).
Status TcpWritevFully(int fd, struct iovec* iov, int iovcnt,
                      size_t* transferred = nullptr);

/// Wraps an already-connected stream socket as a client RpcConnection on
/// the requested backend (tests use a socketpair end to drive torn-frame
/// scenarios that a real loopback connect cannot reach deterministically).
/// Returns null when `backend` resolves to kIoUring but the client ring
/// cannot start — callers decide whether to skip or fall back.
std::unique_ptr<RpcConnection> WrapClientFdForTest(
    int fd, NetBackend backend = NetBackend::kEpoll);

}  // namespace internal

}  // namespace dpr

#endif  // DPR_NET_TCP_NET_H_
