// io_uring transport backend: the uring loop replaces epoll_wait + recv +
// sendmsg with batched SQE submission on a per-loop ring (common/uring.h,
// the same core the storage engine sits on).
//
//  - Accept: one multishot IORING_OP_ACCEPT on loop 0 keeps the listener
//    armed across completions; accepted sockets spread round-robin.
//  - Reads: one multishot IORING_OP_RECV per connection with
//    IOSQE_BUFFER_SELECT against a per-loop provided buffer ring
//    (IORING_REGISTER_PBUF_RING). Completions carry a buffer id; the frame
//    decoder parses straight out of the provided buffer (no intermediate
//    staging copy — only a trailing partial frame is carried to a spill
//    buffer), then the buffer goes back on the ring.
//  - Writes: at most one in-flight IORING_OP_SENDMSG per connection whose
//    iovecs point at the queued OutFrame headers+payloads in place (same
//    ≤ kMaxIov/2 frames-per-batch contract as the epoll flush). Partial
//    sends advance the per-frame offset (ConsumeWritten) and resubmit.
//  - Backpressure: the shared ReadGate hysteresis; pausing cancels the
//    multishot recv (IORING_OP_ASYNC_CANCEL), resuming re-arms it.
//  - Shutdown: cancel every armed op, then drain CQEs until the loop's
//    outstanding-op count hits zero — only then is it safe to unmap the
//    ring (the kernel holds pointers into conn memory while ops are live).
//
// Op accounting rule: every pushed SQE eventually yields exactly one CQE
// without IORING_CQE_F_MORE (multishot CQEs with F_MORE mean the op is
// still armed). Both the loop-global outstanding count and the per-conn
// pending count decrement on that uniform rule.

#include "net/uring_net.h"

#if DPR_HAVE_IOURING

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sync.h"
#include "common/uring.h"
#include "net/executor.h"
#include "net/frame.h"
#include "obs/metrics.h"

// The backend needs the 6.0-era UAPI (multishot recv/accept, provided
// buffer rings, SEND_ZC for the runtime probe); with older headers it
// compiles to the unsupported stubs at the bottom of this file. Only the
// multishot flags are macros (the rest are enum values, invisible to
// #ifdef), and IORING_RECV_MULTISHOT is the newest of the set, so the two
// flags proxy for everything this file names.
#if defined(IORING_RECV_MULTISHOT) && defined(IORING_ACCEPT_MULTISHOT)
#define DPR_URING_NET_COMPILED 1
#else
#define DPR_URING_NET_COMPILED 0
#endif

#endif  // DPR_HAVE_IOURING

#if DPR_HAVE_IOURING && DPR_URING_NET_COMPILED

namespace dpr {

namespace {

using internal::BuildIovecs;
using internal::ConfigureSocket;
using internal::ConsumeWritten;
using internal::kMaxIov;
using internal::kReadChunk;
using internal::MakeFrame;
using internal::MapSocketError;
using internal::OutFrame;
using internal::ReadGate;
using internal::SocketKind;
using internal::Stats;

// Provided-buffer ring geometry per loop: 64 buffers of kReadChunk (64 KiB)
// — 4 MiB of receive window shared by every connection on the loop.
// Buffers recycle as soon as their CQE is parsed, so exhaustion
// (-ENOBUFS, counted) needs 64 completions queued behind one drain pass.
constexpr uint32_t kBufEntries = 64;
constexpr uint16_t kBufGroup = 0;

// Small-integer user_data values for loop-owned ops; anything >= kUdFirstPtr
// is a tagged Target pointer.
constexpr uint64_t kUdWake = 1;
constexpr uint64_t kUdWakeCancel = 2;
constexpr uint64_t kUdFirstPtr = 4096;

// Low-2-bit tags on Target pointers (heap objects are 8+ aligned).
constexpr uint8_t kTagRecv = 0;
constexpr uint8_t kTagSend = 1;
constexpr uint8_t kTagAccept = 2;
constexpr uint8_t kTagCancel = 3;  // a cancel op's own completion

// One ring-owning I/O thread. Owns the wake eventfd, the posted-closure
// queue, and the provided buffer ring. Single-threaded by construction:
// every op completion and every posted closure runs on the loop thread.
class UringLoop {
 public:
  // CQE sink for ops whose user_data carries this object.
  class Target {
   public:
    virtual ~Target() = default;
    virtual void OnCqe(UringLoop* loop, uint8_t tag, int32_t res,
                       uint32_t flags) = 0;
  };

  UringLoop() = default;

  ~UringLoop() {
    Stop();
    if (buf_ring_ != nullptr) {
      ring_.UnregisterBufRing(kBufGroup);
      munmap(buf_ring_, buf_ring_sz_);
    }
    if (bufs_ != nullptr) munmap(bufs_, bufs_sz_);
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  // Ring + buffer-ring + eventfd setup, separated from StartThread so the
  // factory can fail over to epoll before any thread exists.
  bool Init(uint32_t entries) {
    if (!ring_.Init(entries)) return false;
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return false;
    buf_ring_sz_ = kBufEntries * sizeof(io_uring_buf);
    buf_ring_ = mmap(nullptr, buf_ring_sz_, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    if (buf_ring_ == MAP_FAILED) {
      buf_ring_ = nullptr;
      return false;
    }
    if (!ring_.RegisterBufRing(buf_ring_, kBufEntries, kBufGroup)) {
      munmap(buf_ring_, buf_ring_sz_);
      buf_ring_ = nullptr;
      return false;
    }
    bufs_sz_ = static_cast<size_t>(kBufEntries) * kReadChunk;
    bufs_ = static_cast<char*>(mmap(nullptr, bufs_sz_, PROT_READ | PROT_WRITE,
                                    MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (bufs_ == MAP_FAILED) {
      bufs_ = nullptr;
      return false;
    }
    for (uint16_t bid = 0; bid < kBufEntries; ++bid) RecycleBuffer(bid);
    return true;
  }

  void StartThread() {
    {
      MutexLock guard(post_mu_);
      accepting_posts_ = true;
    }
    thread_ = std::thread([this] { Run(); });
  }

  // Posts the shutdown closure and joins. `on_stop` hooks (set by the
  // server) cancel their own ops from the loop thread. Idempotent.
  void Stop() {
    if (!thread_.joinable()) return;
    {
      MutexLock guard(post_mu_);
      if (!stop_requested_) {
        stop_requested_ = true;
        posted_.push_back([this] { BeginShutdownOnLoop(); });
      }
      accepting_posts_ = false;
    }
    Wake();
    thread_.join();
  }

  /// Queues `fn` onto the loop thread. Returns false (fn dropped) once Stop
  /// has begun.
  bool Post(std::function<void()> fn) {
    {
      MutexLock guard(post_mu_);
      if (!accepting_posts_) return false;
      posted_.push_back(std::move(fn));
    }
    Wake();
    return true;
  }

  bool InLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  /// Hook run on the loop thread when shutdown begins; the owner cancels
  /// its accept op and closes its connections here. Set before StartThread.
  void set_on_stop(std::function<void()> fn) { on_stop_ = std::move(fn); }

  bool stopping() const { return stopping_; }

  // ---- loop-thread-only op helpers ----

  static uint64_t Ud(Target* t, uint8_t tag) {
    return reinterpret_cast<uint64_t>(t) | tag;
  }

  void PushOp(const io_uring_sqe& sqe) {
    ring_.PushSqe(sqe);
    ++outstanding_ops_;
  }

  void ArmRecv(Target* t, int fd) {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_RECV;
    sqe.fd = fd;
    sqe.ioprio = IORING_RECV_MULTISHOT;
    sqe.flags = IOSQE_BUFFER_SELECT;
    sqe.buf_group = kBufGroup;
    sqe.user_data = Ud(t, kTagRecv);
    PushOp(sqe);
  }

  void ArmAccept(Target* t, int listen_fd) {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_ACCEPT;
    sqe.fd = listen_fd;
    sqe.ioprio = IORING_ACCEPT_MULTISHOT;
    sqe.accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    sqe.user_data = Ud(t, kTagAccept);
    PushOp(sqe);
  }

  void SubmitSendmsg(Target* t, int fd, msghdr* msg) {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_SENDMSG;
    sqe.fd = fd;
    sqe.addr = reinterpret_cast<uint64_t>(msg);
    sqe.len = 1;
    sqe.msg_flags = MSG_NOSIGNAL;
    sqe.user_data = Ud(t, kTagSend);
    PushOp(sqe);
  }

  // Cancels the op whose user_data is `target_ud`. The canceled op
  // completes with -ECANCELED (or runs to completion if it raced); the
  // cancel op itself completes too (kTagCancel / kUdWakeCancel).
  void CancelOp(uint64_t target_ud, uint64_t cancel_ud) {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_ASYNC_CANCEL;
    sqe.addr = target_ud;
    sqe.user_data = cancel_ud;
    PushOp(sqe);
  }

  // Loop thread: run `task` after the current CQE drain / posted-task batch
  // finishes, when no connection's handler frame is on the stack. This is
  // the only safe point to release a connection's last owner reference: a
  // CQE handler returns into OnCqe/MaybeFinishClose, which still touch the
  // object after the handler body ran.
  void Defer(std::function<void()> task) {
    deferred_.push_back(std::move(task));
  }

  char* BufferFor(uint16_t bid) { return bufs_ + size_t{bid} * kReadChunk; }

  // Returns the buffer to the provided ring (release-publishes the tail).
  //
  // Slot addressing is done with raw byte offsets, NOT through
  // io_uring_buf_ring::bufs[]: the UAPI declares that flexible array with
  // __DECLARE_FLEX_ARRAY, whose wrapper struct is empty in C and therefore
  // overlays the ring base — but in C++ an empty member has size 1 and gets
  // alignment-padded, shifting bufs[0] to offset 8. Writing through the C++
  // view lands every descriptor 8 bytes off; the kernel then reads zeroed /
  // torn descriptors and recv fails with ENOBUFS forever. The ABI says slot
  // i lives at byte offset i * sizeof(io_uring_buf) from the ring base
  // (slot 0 overlays the tail word, which is why the tail shares the ring).
  void RecycleBuffer(uint16_t bid) {
    constexpr uint32_t mask = kBufEntries - 1;
    auto* slot = reinterpret_cast<io_uring_buf*>(
        static_cast<char*>(buf_ring_) +
        size_t{buf_tail_ & mask} * sizeof(io_uring_buf));
    slot->addr = reinterpret_cast<uint64_t>(BufferFor(bid));
    slot->len = kReadChunk;
    slot->bid = bid;
    ++buf_tail_;
    // tail sits at offset 14 in both C and C++ (plain members, no flex
    // array involved), so the struct view is safe for the publish.
    auto* br = static_cast<io_uring_buf_ring*>(buf_ring_);
    reinterpret_cast<std::atomic<uint16_t>*>(&br->tail)->store(
        static_cast<uint16_t>(buf_tail_), std::memory_order_release);
  }

 private:
  void Run() {
    ArmWakeRead();
    for (;;) {
      DrainPosted();
      RunDeferred();
      if (ring_.pending() > 0) {
        Stats().uring_sqe_batches->Add(ring_.SubmitPending());
      }
      if (stopping_ && outstanding_ops_ == 0) break;
      if (!ring_.CqReady()) {
        // Combined submit-and-wait: one io_uring_enter parks until a CQE
        // (data, send completion, or the wake eventfd read) is available.
        Stats().uring_sqe_batches->Add(ring_.SubmitAndWait(1));
      }
      const unsigned reaped =
          ring_.DrainCqes([this](const io_uring_cqe& cqe) { HandleCqe(cqe); });
      if (reaped > 0) Stats().uring_cqe_reaped->Add(reaped);
      RunDeferred();
    }
    RunDeferred();
  }

  void RunDeferred() {
    while (!deferred_.empty()) {
      std::vector<std::function<void()>> tasks;
      tasks.swap(deferred_);
      for (auto& task : tasks) task();
    }
  }

  void HandleCqe(const io_uring_cqe& cqe) {
    if ((cqe.flags & IORING_CQE_F_MORE) == 0) --outstanding_ops_;
    if (cqe.user_data < kUdFirstPtr) {
      if (cqe.user_data == kUdWake) HandleWakeCqe();
      return;  // kUdWakeCancel needs no action beyond the count
    }
    auto* target =
        reinterpret_cast<Target*>(cqe.user_data & ~static_cast<uint64_t>(3));
    target->OnCqe(this, static_cast<uint8_t>(cqe.user_data & 3), cqe.res,
                  cqe.flags);
  }

  void HandleWakeCqe() {
    wake_armed_ = false;
    wake_pending_.store(false, std::memory_order_relaxed);
    if (!stopping_) ArmWakeRead();
  }

  void ArmWakeRead() {
    io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_READ;
    sqe.fd = wake_fd_;
    sqe.addr = reinterpret_cast<uint64_t>(&wake_buf_);
    sqe.len = sizeof(wake_buf_);
    sqe.user_data = kUdWake;
    PushOp(sqe);
    wake_armed_ = true;
  }

  void BeginShutdownOnLoop() {
    stopping_ = true;
    if (on_stop_) on_stop_();
    if (wake_armed_) CancelOp(kUdWake, kUdWakeCancel);
  }

  void DrainPosted() {
    std::vector<std::function<void()>> tasks;
    {
      MutexLock guard(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();
  }

  void Wake() {
    if (wake_pending_.exchange(true, std::memory_order_relaxed)) return;
    uint64_t one = 1;
    // dprlint: allowed(net-raw-write) eventfd nudge, not a stream write.
    ssize_t n = write(wake_fd_, &one, sizeof(one));
    (void)n;
  }

  UringRing ring_;
  int wake_fd_ = -1;
  uint64_t wake_buf_ = 0;
  std::thread thread_;

  // Loop-thread-only state.
  bool stopping_ = false;
  bool wake_armed_ = false;
  size_t outstanding_ops_ = 0;
  void* buf_ring_ = nullptr;
  size_t buf_ring_sz_ = 0;
  char* bufs_ = nullptr;
  size_t bufs_sz_ = 0;
  uint32_t buf_tail_ = 0;
  std::function<void()> on_stop_;
  std::vector<std::function<void()>> deferred_;

  // relaxed: collapses redundant eventfd writes; the loop clears it before
  // re-arming the read, so a post can never miss a wakeup.
  std::atomic<bool> wake_pending_{false};
  mutable Mutex post_mu_{LockRank::kTransportLoop, "net.uring.post"};
  std::vector<std::function<void()>> posted_ GUARDED_BY(post_mu_);
  bool accepting_posts_ GUARDED_BY(post_mu_) = false;
  bool stop_requested_ GUARDED_BY(post_mu_) = false;
};

// Connection state shared by the server and client sides: the outbound
// frame queue with its single in-flight SENDMSG, the carry buffer for
// partial inbound frames, and close/cancel accounting. Subclasses supply
// frame dispatch and close notification.
class UringConn : public UringLoop::Target {
 public:
  UringConn(UringLoop* loop, int fd, size_t out_budget, bool track_gauge)
      : loop_(loop),
        fd_(fd),
        out_budget_(out_budget),
        track_gauge_(track_gauge) {}

  ~UringConn() override {
    if (fd_ >= 0) close(fd_);
  }

  UringLoop* loop() const { return loop_; }

  // Loop thread: arm the initial multishot recv.
  void ArmRecvOnLoop() {
    if (closed_ || recv_armed_) return;
    loop_->ArmRecv(this, fd_);
    recv_armed_ = true;
    ++pending_ops_;
  }

  void OnCqe(UringLoop* loop, uint8_t tag, int32_t res,
             uint32_t flags) override {
    if ((flags & IORING_CQE_F_MORE) == 0) --pending_ops_;
    switch (tag) {
      case kTagRecv:
        HandleRecvCqe(loop, res, flags);
        break;
      case kTagSend:
        HandleSendCqe(res);
        break;
      default:  // kTagCancel: the cancel op's own completion
        break;
    }
    if (closed_) MaybeFinishClose();
  }

  // Loop thread (posted from SendResponse/CallAsync): start a send if one
  // is not already in flight.
  void StartSendIfNeeded() {
    if (closed_ || send_inflight_) return;
    bool start = false;
    {
      MutexLock guard(out_mu_);
      start = !out_.empty();
      if (!start) flush_scheduled_ = false;
    }
    if (start) StartSend();
  }

  // Loop thread. Closes the connection: drops queued output, cancels the
  // armed recv, and (once every CQE drained) closes the fd and notifies the
  // owner. An in-flight send keeps its queue until its CQE lands so the
  // completion can still detect a torn frame (bytes of the front frame on
  // the wire) — the shutdown() below wakes a blocked send promptly.
  void CloseOnLoop(const Status& reason) {
    if (closed_) return;
    closed_ = true;
    {
      MutexLock guard(out_mu_);
      writable_ = false;
    }
    if (!send_inflight_) DropOutputQueue();
    shutdown(fd_, SHUT_RDWR);
    if (recv_armed_) {
      loop_->CancelOp(UringLoop::Ud(this, kTagRecv),
                      UringLoop::Ud(this, kTagCancel));
      ++pending_ops_;
    }
    OnClosed(reason);
    MaybeFinishClose();
  }

 protected:
  // Exactly one decoded inbound frame. Loop thread; `payload` points into
  // the provided buffer (or the carry spill) and is valid only for the call.
  virtual void OnFrame(uint64_t id, const char* payload, size_t len) = 0;
  // The connection began closing (queued output dropped, fd shut down).
  virtual void OnClosed(const Status& reason) = 0;
  // Every CQE drained and the fd closed: the owner may release the conn.
  virtual void OnFullyClosed() = 0;
  // A send completed with an error. `torn` means bytes of the front frame
  // were already on the wire (the stream cannot resynchronize). The default
  // close covers the server; the client overrides to poison + fail calls.
  virtual void OnSendFailure(const Status& s, bool torn) {
    (void)torn;
    CloseOnLoop(s);
  }

  void HandleRecvCqe(UringLoop* loop, int32_t res, uint32_t flags) {
    const bool terminal = (flags & IORING_CQE_F_MORE) == 0;
    if (terminal) recv_armed_ = false;
    if (res > 0) {
      if ((flags & IORING_CQE_F_BUFFER) == 0) {
        // Data without a provided buffer violates the BUFFER_SELECT
        // contract; treat the stream as garbage.
        CloseOnLoop(Status::IOError("recv completion without buffer"));
        return;
      }
      const uint16_t bid =
          static_cast<uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
      const bool ok = IngestBytes(loop->BufferFor(bid),
                                  static_cast<size_t>(res));
      loop->RecycleBuffer(bid);
      if (!ok) {
        CloseOnLoop(Status::IOError("bad frame stream"));
        return;
      }
      if (terminal && !closed_ && !read_gate_.paused) {
        // Multishot ran out (kernel dropped the arm); re-arm.
        Stats().uring_resubmits->Add();
        ArmRecvOnLoop();
      }
      return;
    }
    if (res == -ENOBUFS) {
      Stats().uring_buffer_ring_exhausted->Add();
      if (!closed_ && !read_gate_.paused) {
        Stats().uring_resubmits->Add();
        ArmRecvOnLoop();
      }
      return;
    }
    if (res == -ECANCELED) {
      // Our own pause/close cancel landing; paused conns stay unarmed.
      if (!closed_ && !read_gate_.paused) ArmRecvOnLoop();
      return;
    }
    if (res == 0) {
      CloseOnLoop(Status::Transient("connection closed"));
      return;
    }
    CloseOnLoop(MapSocketError("recv", -res));
  }

  void HandleSendCqe(int32_t res) {
    send_inflight_ = false;
    bool torn;
    bool more;
    size_t queued;
    {
      MutexLock guard(out_mu_);
      if (res > 0) {
        if (static_cast<size_t>(res) < send_batch_bytes_) {
          Stats().short_writes->Add();
        }
        const size_t completed =
            ConsumeWritten(&out_, static_cast<size_t>(res));
        out_bytes_ -= static_cast<size_t>(res);
        if (track_gauge_) Stats().output_queue_bytes->Sub(res);
        Stats().frames_sent->Add(completed);
      }
      torn = !out_.empty() && out_.front().offset > 0;
      more = !out_.empty();
      if (!more) flush_scheduled_ = false;
      queued = out_bytes_;
    }
    if (res < 0 && res != -ECANCELED) {
      OnSendFailure(MapSocketError("sendmsg", -res), torn);
      return;
    }
    if (closed_) {
      // The conn closed while this send was in flight (recv EOF/error).
      // A partially-sent front frame means the stream tore mid-frame — the
      // same poison contract as a send failure. Either way the queue is
      // dead now; drop it.
      if (torn) {
        OnSendFailure(Status::Transient("connection closed mid-frame"), torn);
      }
      DropOutputQueue();
      return;
    }
    if (more) {
      // Partial write or more frames queued since the SQE was built: the
      // offsets carry forward and the next SENDMSG picks up mid-frame.
      Stats().uring_resubmits->Add();
      StartSend();
    }
    UpdateReadGate(queued);
  }

  void DropOutputQueue() {
    size_t dropped;
    {
      MutexLock guard(out_mu_);
      dropped = out_bytes_;
      out_.clear();
      out_bytes_ = 0;
      flush_scheduled_ = false;
    }
    if (track_gauge_ && dropped > 0) {
      Stats().output_queue_bytes->Sub(static_cast<int64_t>(dropped));
    }
  }

  // Builds the iovec batch under out_mu_ and submits one SENDMSG. The
  // iovecs point into deque elements; std::deque never invalidates
  // references on push_back/pop_front, and only this loop thread pops, so
  // the pointers stay valid while the SQE is in flight.
  void StartSend() {
    {
      MutexLock guard(out_mu_);
      if (out_.empty()) {
        flush_scheduled_ = false;
        return;
      }
      int iovcnt = 0;
      BuildIovecs(out_, iov_, &iovcnt, &send_batch_bytes_);
      memset(&send_msg_, 0, sizeof(send_msg_));
      send_msg_.msg_iov = iov_;
      send_msg_.msg_iovlen = static_cast<size_t>(iovcnt);
    }
    loop_->SubmitSendmsg(this, fd_, &send_msg_);
    send_inflight_ = true;
    ++pending_ops_;
  }

  void UpdateReadGate(size_t queued) {
    if (closed_ || out_budget_ == 0) return;
    if (!read_gate_.Update(queued, out_budget_)) return;
    if (read_gate_.paused) {
      if (recv_armed_) {
        loop_->CancelOp(UringLoop::Ud(this, kTagRecv),
                        UringLoop::Ud(this, kTagCancel));
        ++pending_ops_;
      }
    } else if (!recv_armed_) {
      Stats().uring_resubmits->Add();
      ArmRecvOnLoop();
    }
  }

  // Frame-decodes a provided buffer's bytes. Whole frames parse in place;
  // a trailing partial frame (or a frame spanning buffers) rides carry_.
  // Returns false on a garbage length prefix.
  bool IngestBytes(const char* data, size_t len) {
    bool garbage = false;
    if (!carry_.empty()) {
      carry_.append(data, len);
      const size_t pos = internal::ParseFrameStream(
          carry_.data(), carry_.size(), &garbage,
          [this](uint64_t id, const char* p, size_t n) { OnFrame(id, p, n); });
      if (garbage) return false;
      carry_.erase(0, pos);
      return true;
    }
    const size_t pos = internal::ParseFrameStream(
        data, len, &garbage,
        [this](uint64_t id, const char* p, size_t n) { OnFrame(id, p, n); });
    if (garbage) return false;
    if (pos < len) carry_.assign(data + pos, len - pos);
    return true;
  }

  void MaybeFinishClose() {
    if (!closed_ || pending_ops_ != 0 || fully_closed_) return;
    fully_closed_ = true;
    close(fd_);
    fd_ = -1;
    // Deferred, not called inline: OnFullyClosed releases the owner's last
    // reference (server registry) or wakes the blocked destructor (client),
    // but the CQE handler that got us here still reads this object after
    // its callee returns (OnCqe's closed_ check, this function's guards).
    // The loop runs deferred tasks only once no handler frame is on its
    // stack.
    loop_->Defer([this] { OnFullyClosed(); });
  }

  // Any thread: queue a frame; returns true with *nudge set when the
  // caller must post StartSendIfNeeded to the loop.
  bool EnqueueFrame(OutFrame frame, bool* nudge) {
    MutexLock guard(out_mu_);
    if (!writable_) return false;
    out_bytes_ += frame.size();
    if (track_gauge_) {
      Stats().output_queue_bytes->Add(static_cast<int64_t>(frame.size()));
    }
    out_.push_back(std::move(frame));
    *nudge = !flush_scheduled_;
    if (*nudge) flush_scheduled_ = true;
    return true;
  }

  UringLoop* const loop_;
  int fd_;
  const size_t out_budget_;
  const bool track_gauge_;

  // Loop-thread-only state.
  bool closed_ = false;
  bool fully_closed_ = false;
  bool recv_armed_ = false;
  bool send_inflight_ = false;
  size_t pending_ops_ = 0;
  ReadGate read_gate_;
  std::string carry_;
  struct iovec iov_[kMaxIov];
  msghdr send_msg_{};
  size_t send_batch_bytes_ = 0;

  Mutex out_mu_{LockRank::kTransport, "net.uring.conn_out"};
  std::deque<OutFrame> out_ GUARDED_BY(out_mu_);
  size_t out_bytes_ GUARDED_BY(out_mu_) = 0;
  bool flush_scheduled_ GUARDED_BY(out_mu_) = false;
  bool writable_ GUARDED_BY(out_mu_) = true;
};

// ------------------------------------------------------------------- server

class UringTcpServer;

class UringServerConn : public UringConn,
                        public std::enable_shared_from_this<UringServerConn> {
 public:
  UringServerConn(UringTcpServer* server, UringLoop* loop, int fd,
                  size_t out_budget)
      : UringConn(loop, fd, out_budget, /*track_gauge=*/true),
        server_(server) {}

  // Any thread (executor workers). Queues the response and nudges the loop.
  void SendResponse(uint64_t id, std::string payload) {
    bool nudge = false;
    if (!EnqueueFrame(MakeFrame(id, std::move(payload)), &nudge)) return;
    if (nudge) {
      auto self = shared_from_this();
      // Post rejection means the loop already stopped (server Stop): the
      // queued response dies with the connection.
      (void)loop_->Post([self] { self->StartSendIfNeeded(); });
    }
  }

 protected:
  void OnFrame(uint64_t id, const char* payload, size_t len) override;
  void OnClosed(const Status& /*reason*/) override {}
  void OnFullyClosed() override;

 private:
  UringTcpServer* const server_;
};

class UringTcpServer : public RpcServer, public UringLoop::Target {
 public:
  UringTcpServer(uint16_t port, const TcpServerOptions& options)
      : requested_port_(port), options_(options) {
    if (options_.io_threads == 0) options_.io_threads = 1;
    if (options_.executor_threads == 0) options_.executor_threads = 1;
    if (options_.executor_queue_capacity == 0) {
      options_.executor_queue_capacity = 1;
    }
  }

  ~UringTcpServer() override { Stop(); }

  // Ring setup for every loop; a false return routes the factory to epoll.
  bool InitRings() {
    loops_.reserve(options_.io_threads);
    for (uint32_t i = 0; i < options_.io_threads; ++i) {
      loops_.push_back(std::make_unique<UringLoop>());
      if (!loops_.back()->Init(/*entries=*/256)) return false;
    }
    return true;
  }

  Status Start(RpcHandler handler) override {
    handler_ = std::move(handler);
    stop_.store(false, std::memory_order_release);
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Status::IOError("socket failed");
    ConfigureSocket(listen_fd_, SocketKind::kListener);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(requested_port_);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError(std::string("bind: ") + strerror(errno));
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    if (listen(listen_fd_, 128) != 0) {
      return Status::IOError(std::string("listen: ") + strerror(errno));
    }
    executor_ = std::make_unique<Executor>(ExecutorOptions{
        options_.executor_threads, options_.executor_queue_capacity,
        "net.tcp.executor"});
    executor_->Start();
    // The listener's multishot accept lives on loop 0; accepted sockets
    // spread round-robin. Each loop cancels its own ops on stop.
    loops_[0]->set_on_stop([this] {
      if (accept_armed_) {
        loops_[0]->CancelOp(UringLoop::Ud(this, kTagAccept),
                            UringLoop::Ud(this, kTagCancel));
      }
      CloseLoopConns(loops_[0].get());
    });
    for (uint32_t i = 1; i < options_.io_threads; ++i) {
      UringLoop* loop = loops_[i].get();
      loop->set_on_stop([this, loop] { CloseLoopConns(loop); });
    }
    for (auto& loop : loops_) loop->StartThread();
    const bool armed = loops_[0]->Post([this] {
      loops_[0]->ArmAccept(this, listen_fd_);
      accept_armed_ = true;
    });
    return armed ? Status::OK()
                 : Status::IOError("uring loop rejected accept arm");
  }

  void Stop() override {
    if (stop_.exchange(true)) return;
    // Stop the loops first: each drains its ops (conns close themselves and
    // leave the registry) before the thread joins, so teardown below is
    // single-threaded and no kernel op references conn memory.
    for (auto& loop : loops_) loop->Stop();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (executor_) executor_->Shutdown();
    // Conns whose close never finished (posted responses racing Stop) were
    // all force-closed by the on_stop hooks; the registry is empty unless a
    // loop never started. Drop whatever remains.
    std::map<UringServerConn*, std::shared_ptr<UringServerConn>> conns;
    {
      MutexLock guard(conns_mu_);
      conns.swap(conns_);
    }
    for (auto& [ptr, conn] : conns) {
      (void)ptr;
      Stats().server_conns->Sub(1);
    }
  }

  std::string address() const override {
    return "127.0.0.1:" + std::to_string(bound_port_);
  }

  // Multishot accept completion (loop-0 thread).
  void OnCqe(UringLoop* loop, uint8_t tag, int32_t res,
             uint32_t flags) override {
    if (tag != kTagAccept) return;  // kTagCancel: nothing to do
    const bool terminal = (flags & IORING_CQE_F_MORE) == 0;
    if (terminal) accept_armed_ = false;
    if (res >= 0) {
      AdoptSocket(res);
    }
    // Re-arm when the multishot terminated for any reason other than stop
    // (ENFILE bursts, kernel dropping the arm after a completion).
    if (terminal && !loop->stopping()) {
      Stats().uring_resubmits->Add();
      loop->ArmAccept(this, listen_fd_);
      accept_armed_ = true;
    }
  }

  // Drops the registry ref for a connection that fully closed. The object
  // survives while executor tasks still hold it.
  void ForgetConn(UringServerConn* conn) {
    std::shared_ptr<UringServerConn> ref;
    {
      MutexLock guard(conns_mu_);
      auto it = conns_.find(conn);
      if (it == conns_.end()) return;
      ref = std::move(it->second);
      conns_.erase(it);
    }
    Stats().server_conns->Sub(1);
  }

  // Loop thread: hand a decoded request to the shared executor. Submit
  // blocks while the bounded queue is full — the loop thread pausing here
  // is precisely the read-throttle the bounded intake exists to provide.
  void Dispatch(std::shared_ptr<UringServerConn> conn, uint64_t id,
                std::string request) {
    (void)executor_->Submit(
        [this, conn = std::move(conn), id, request = std::move(request)] {
          if (stop_.load(std::memory_order_acquire)) return;
          std::string response;
          handler_(Slice(request), &response);
          conn->SendResponse(id, std::move(response));
        });
  }

 private:
  void AdoptSocket(int fd) {
    Stats().accepted->Add();
    ConfigureSocket(fd, SocketKind::kData);
    UringLoop* loop = loops_[next_loop_++ % loops_.size()].get();
    auto conn = std::make_shared<UringServerConn>(
        this, loop, fd, options_.max_output_queue_bytes);
    {
      MutexLock guard(conns_mu_);
      conns_[conn.get()] = conn;
    }
    Stats().server_conns->Add(1);
    // Arm the recv on the owning loop's thread.
    if (!loop->Post([conn] { conn->ArmRecvOnLoop(); })) {
      ForgetConn(conn.get());
    }
  }

  // on_stop hook (that loop's thread): close every conn pinned there.
  void CloseLoopConns(UringLoop* loop) {
    std::vector<std::shared_ptr<UringServerConn>> mine;
    {
      MutexLock guard(conns_mu_);
      for (auto& [ptr, conn] : conns_) {
        if (ptr->loop() == loop) mine.push_back(conn);
      }
    }
    for (auto& conn : mine) {
      conn->CloseOnLoop(Status::Unavailable("server stopping"));
    }
  }

  friend class UringServerConn;

  uint16_t requested_port_;
  TcpServerOptions options_;
  uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  RpcHandler handler_;
  // seq_cst flag (defaults suffice): guards double-Stop and publishes the
  // started/stopped transition; no data is ordered through it — loops and
  // executor have their own join/shutdown synchronization.
  std::atomic<bool> stop_{true};
  std::unique_ptr<Executor> executor_;
  std::vector<std::unique_ptr<UringLoop>> loops_;
  size_t next_loop_ = 0;   // loop-0 thread only (accept path)
  bool accept_armed_ = false;  // loop-0 thread only
  Mutex conns_mu_{LockRank::kTransportLoop, "net.uring.conns"};
  std::map<UringServerConn*, std::shared_ptr<UringServerConn>> conns_
      GUARDED_BY(conns_mu_);
};

void UringServerConn::OnFrame(uint64_t id, const char* payload, size_t len) {
  server_->Dispatch(shared_from_this(), id, std::string(payload, len));
}

void UringServerConn::OnFullyClosed() { server_->ForgetConn(this); }

// ------------------------------------------------------------------- client

// All uring client connections share one process-wide ring loop (vs two
// dedicated threads per epoll connection): CallAsync queues the frame and
// nudges the loop; response callbacks run on the loop thread, matching the
// epoll client's reader-thread callback context.
class UringClientConn;

UringLoop* SharedClientLoop() {
  static UringLoop* loop = []() -> UringLoop* {
    auto owned = std::make_unique<UringLoop>();
    if (!owned->Init(/*entries=*/256)) return nullptr;
    owned->StartThread();
    // Leaked deliberately: client connections may outlive any scope, and
    // the loop thread must survive until process exit (same pattern as
    // DefaultIoEngine in the storage plane).
    return owned.release();
  }();
  return loop;
}

class UringClientConn final : public UringConn, public RpcConnection {
 public:
  UringClientConn(UringLoop* loop, int fd, const std::string& peer)
      : UringConn(loop, fd, /*out_budget=*/0, /*track_gauge=*/false),
        peer_scope_(HashBytes(peer.data(), peer.size())) {}

  // Factory: arms the recv on the loop thread before any call is issued.
  static std::unique_ptr<RpcConnection> Create(int fd,
                                               const std::string& peer) {
    UringLoop* loop = SharedClientLoop();
    if (loop == nullptr) return nullptr;
    auto conn = std::make_unique<UringClientConn>(loop, fd, peer);
    UringClientConn* raw = conn.get();
    if (!loop->Post([raw] { raw->ArmRecvOnLoop(); })) return nullptr;
    return conn;
  }

  ~UringClientConn() override {
    {
      MutexLock guard(out_mu_);
      closing_ = true;
    }
    // Hand the close to the loop thread and wait until no kernel op (or
    // loop-thread frame) references this object. Unlike the epoll client
    // there is no reader thread blocked in recv() to unblock with an early
    // shutdown() here — fd_ is loop-thread state (CloseOnLoop shuts it
    // down), and the eventfd nudge inside Post wakes the parked loop.
    //
    // The wait needs BOTH conditions: `destroyed_` alone is not enough,
    // because the loop may have fully closed the connection (peer reset,
    // server stop) before this destructor ran — destroyed_ would already be
    // true while the lambda below, capturing `this`, is still queued.
    const bool posted = loop_->Post([this] {
      CloseOnLoop(Status::Unavailable("connection destroyed"));
      MutexLock guard(close_mu_);
      close_task_ran_ = true;
      destroyed_cv_.NotifyAll();
    });
    if (posted) {
      MutexLock guard(close_mu_);
      destroyed_cv_.Wait(close_mu_, [this]() REQUIRES(close_mu_) {
        return destroyed_ && close_task_ran_;
      });
    }
    FailPending(Status::Unavailable("connection destroyed"));
  }

  void CallAsync(std::string request, ResponseCallback callback) override {
    bool duplicate = false;
    if (!internal::ApplyClientNetFaults(peer_scope_, callback, &duplicate)) {
      return;
    }
    const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock guard(pending_mu_);
      pending_[id] = std::move(callback);
    }
    bool accepted;
    bool nudge = false;
    {
      MutexLock guard(out_mu_);
      accepted = !closing_ && !poisoned_ && writable_;
      if (accepted) {
        auto enqueue = [this](OutFrame f) REQUIRES(out_mu_) {
          out_bytes_ += f.size();
          out_.push_back(std::move(f));
        };
        if (duplicate) enqueue(MakeFrame(id, request));
        enqueue(MakeFrame(id, std::move(request)));
        if (!flush_scheduled_) {
          flush_scheduled_ = true;
          nudge = true;
        }
      }
    }
    if (accepted) {
      if (nudge && !loop_->Post([this] { StartSendIfNeeded(); })) {
        accepted = false;  // loop died under us; fail the call below
      } else {
        return;
      }
    }
    ResponseCallback cb = TakePending(id);
    if (cb) cb(Status::Transient("connection closed"), Slice());
  }

 protected:
  // Loop thread: match the response id; the Slice points into the provided
  // buffer (or carry spill) and is valid only during the callback, same
  // contract as the epoll reader thread.
  void OnFrame(uint64_t id, const char* payload, size_t len) override {
    ResponseCallback cb = TakePending(id);
    if (cb) cb(Status::OK(), Slice(payload, len));
  }

  void OnClosed(const Status& reason) override { FailPending(reason); }

  void OnFullyClosed() override {
    MutexLock guard(close_mu_);
    destroyed_ = true;
    destroyed_cv_.NotifyAll();
  }

  // Same torn-frame contract as the epoll client: a failure with bytes of
  // the front frame on the wire poisons the connection (shutdown makes the
  // armed recv fail every pending call); a clean frame-boundary failure
  // only fails the frames queued at failure time.
  void OnSendFailure(const Status& s, bool torn) override {
    if (torn) {
      Stats().poisoned->Add();
      {
        MutexLock guard(out_mu_);
        poisoned_ = true;
      }
      shutdown(fd_, SHUT_RDWR);
    }
    std::vector<uint64_t> failed;
    {
      MutexLock guard(out_mu_);
      for (OutFrame& f : out_) failed.push_back(f.id);
      out_.clear();
      out_bytes_ = 0;
      flush_scheduled_ = false;
    }
    for (uint64_t id : failed) {
      ResponseCallback cb = TakePending(id);
      if (cb) cb(s, Slice());
    }
  }

 private:
  ResponseCallback TakePending(uint64_t id) {
    MutexLock guard(pending_mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return nullptr;
    ResponseCallback cb = std::move(it->second);
    pending_.erase(it);
    return cb;
  }

  void FailPending(const Status& s) {
    std::map<uint64_t, ResponseCallback> orphans;
    {
      MutexLock guard(pending_mu_);
      orphans.swap(pending_);
    }
    for (auto& [id, cb] : orphans) {
      (void)id;
      cb(s, Slice());
    }
  }

  const uint64_t peer_scope_;
  // relaxed: request-id allocator; uniqueness is all that matters, the id
  // is published through pending_mu_.
  std::atomic<uint64_t> next_id_{1};
  bool closing_ GUARDED_BY(out_mu_) = false;
  bool poisoned_ GUARDED_BY(out_mu_) = false;
  Mutex pending_mu_{LockRank::kTransport, "net.uring.pending"};
  std::map<uint64_t, ResponseCallback> pending_ GUARDED_BY(pending_mu_);
  Mutex close_mu_{LockRank::kTransport, "net.uring.close"};
  CondVar destroyed_cv_;
  bool destroyed_ GUARDED_BY(close_mu_) = false;
  bool close_task_ran_ GUARDED_BY(close_mu_) = false;
};

}  // namespace

bool NetUringSupported() {
  static const bool supported = [] {
    UringRing ring;
    if (!ring.Init(8)) return false;
    // Opcode probes for everything the loop arms, plus IORING_OP_SEND_ZC as
    // a 6.0+ proxy: multishot recv and buffer-id CQEs shipped in the same
    // release, and the probe interface cannot see per-op flags.
    const uint8_t required[] = {IORING_OP_ACCEPT, IORING_OP_RECV,
                                IORING_OP_SENDMSG, IORING_OP_READ,
                                IORING_OP_ASYNC_CANCEL, IORING_OP_SEND_ZC};
    for (uint8_t op : required) {
      if (!ring.ProbeOpcode(op)) return false;
    }
    void* mem = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    if (mem == MAP_FAILED) return false;
    const bool pbuf = ring.RegisterBufRing(mem, 8, 0);
    if (pbuf) ring.UnregisterBufRing(0);
    munmap(mem, 4096);
    return pbuf;
  }();
  return supported;
}

namespace internal {

std::unique_ptr<RpcServer> TryMakeUringTcpServer(
    uint16_t port, const TcpServerOptions& options) {
  if (!NetUringSupported()) return nullptr;
  auto server = std::make_unique<UringTcpServer>(port, options);
  if (!server->InitRings()) return nullptr;
  return server;
}

std::unique_ptr<RpcConnection> TryWrapUringClientFd(int fd,
                                                    const std::string& peer) {
  if (!NetUringSupported()) return nullptr;
  return UringClientConn::Create(fd, peer);
}

}  // namespace internal

}  // namespace dpr

#else  // !(DPR_HAVE_IOURING && DPR_URING_NET_COMPILED)

namespace dpr {

bool NetUringSupported() { return false; }

namespace internal {

std::unique_ptr<RpcServer> TryMakeUringTcpServer(
    uint16_t /*port*/, const TcpServerOptions& /*options*/) {
  return nullptr;
}

std::unique_ptr<RpcConnection> TryWrapUringClientFd(
    int /*fd*/, const std::string& /*peer*/) {
  return nullptr;
}

}  // namespace internal

}  // namespace dpr

#endif  // DPR_HAVE_IOURING && DPR_URING_NET_COMPILED
