#ifndef DPR_NET_EXECUTOR_H_
#define DPR_NET_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dpr {

struct ExecutorOptions {
  /// Worker threads. At least 1.
  uint32_t threads = 2;
  /// Maximum queued (not yet running) tasks; Submit blocks and TrySubmit
  /// fails while the queue sits at capacity. Bounded by design: an unbounded
  /// queue turns overload into unbounded memory growth and unbounded tail
  /// latency instead of backpressure.
  size_t queue_capacity = 4096;
  /// Name used in the lock-rank checker and log lines (string literal).
  const char* name = "net.executor";
};

/// Bounded work queue + fixed worker pool decoupling request execution from
/// transport I/O threads: an epoll loop (or an in-memory client thread)
/// enqueues decoded requests here so a slow handler never stalls unrelated
/// connections, and the server's thread count stays fixed regardless of
/// connection count. Reusable by any subsystem that needs the same shape.
///
/// Task contract: a submitted task either runs to completion on a worker
/// (Shutdown drains the queue before joining) or was never accepted
/// (Submit/TrySubmit returned false) — tasks are never silently dropped, so
/// response callbacks threaded through tasks fire exactly once.
class Executor {
 public:
  explicit Executor(ExecutorOptions options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Spawns the worker pool. Call once before the first Submit.
  void Start();

  /// Runs every already-accepted task, then joins the workers. Idempotent.
  /// Submissions racing Shutdown either land (and run) or return false.
  void Shutdown();

  /// Enqueues `task`, blocking while the queue is at capacity. Returns false
  /// (task not accepted, caller keeps ownership of the work) once Shutdown
  /// has begun.
  bool Submit(std::function<void()> task);

  /// Non-blocking Submit: returns false when the queue is full or the
  /// executor is shutting down.
  bool TrySubmit(std::function<void()> task);

  uint32_t thread_count() const { return options_.threads; }
  size_t queue_capacity() const { return options_.queue_capacity; }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  const ExecutorOptions options_;
  mutable Mutex mu_{LockRank::kExecutor, "net.executor"};
  CondVar work_cv_;   // signaled when a task arrives or shutdown begins
  CondVar space_cv_;  // signaled when a queue slot frees up
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_NET_EXECUTOR_H_
