#ifndef DPR_NET_INMEMORY_NET_H_
#define DPR_NET_INMEMORY_NET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/rpc.h"

namespace dpr {

struct InMemoryNetOptions {
  /// Executor worker threads per server (models server-side request
  /// execution threads decoupled from the client).
  uint32_t server_threads = 2;
  /// Bounded intake of the per-server executor; senders block (backpressure)
  /// while it is full, mirroring the TCP transport's bounded executor.
  size_t queue_capacity = 4096;
  /// One-way latency injected before a request is handled, in microseconds
  /// (0 = none). Models datacenter RTT without real sockets.
  uint64_t latency_us = 0;
};

/// A process-local message fabric: named endpoints whose requests run on the
/// same bounded Executor abstraction as the TCP transport (see
/// net/executor.h), with optional injected latency. The default transport
/// for tests and single-box cluster benches; the same client/server code
/// runs unchanged over TcpNet (see tcp_net.h).
class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(InMemoryNetOptions options = {});
  ~InMemoryNetwork();

  /// Creates a server endpoint bound to `name` (must be unique).
  std::unique_ptr<RpcServer> CreateServer(const std::string& name);

  /// Connects to the server bound to `name` (which must be Start()ed before
  /// the first call is made).
  std::unique_ptr<RpcConnection> Connect(const std::string& name);

 private:
  class Server;
  class Connection;

  InMemoryNetOptions options_;
  Mutex mu_{LockRank::kTransport, "net.inmemory.registry"};
  std::map<std::string, Server*> servers_ GUARDED_BY(mu_);
};

}  // namespace dpr

#endif  // DPR_NET_INMEMORY_NET_H_
