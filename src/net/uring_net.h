#ifndef DPR_NET_URING_NET_H_
#define DPR_NET_URING_NET_H_

// io_uring transport backend, selected through the NetBackend seam in
// tcp_net.h (MakeTcpServer / ConnectTcp route here when the backend
// resolves to kIoUring). Everything below returns null when the backend is
// compiled out (DPR_HAVE_IOURING=0) or the kernel lacks the feature set, so
// the factories in tcp_net.cc can fall back to the epoll loop.

#include <memory>
#include <string>

#include "net/rpc.h"
#include "net/tcp_net.h"

namespace dpr {
namespace internal {

/// Uring-backed RpcServer. Ring + provided-buffer-ring setup happens here
/// (not in Start) so a failure falls back to epoll before the caller ever
/// holds the server.
std::unique_ptr<RpcServer> TryMakeUringTcpServer(
    uint16_t port, const TcpServerOptions& options);

/// Wraps an already-connected stream socket as a uring-backed client
/// connection on the shared client ring loop. `peer` seeds the fault-probe
/// scope, as in the epoll client.
std::unique_ptr<RpcConnection> TryWrapUringClientFd(int fd,
                                                    const std::string& peer);

}  // namespace internal
}  // namespace dpr

#endif  // DPR_NET_URING_NET_H_
