#ifndef DPR_NET_EVENT_LOOP_H_
#define DPR_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace dpr {

/// One epoll-driven I/O thread. Owns an epoll instance plus an eventfd used
/// to interrupt epoll_wait; registered fds must be non-blocking. The TCP
/// transport runs a fixed small set of these regardless of connection count
/// (each accepted socket is pinned to one loop round-robin), so server-side
/// thread count is O(io_threads), not O(connections).
///
/// Threading contract:
///  * Handler::OnReady always runs on the loop thread (level-triggered).
///  * Add/Modify/Remove are plain epoll_ctl calls and may run from any
///    thread; the caller guarantees the handler outlives its registration
///    (the transport removes fds on the loop thread, or after Stop joined).
///  * Post() hands a closure to the loop thread; closures run between epoll
///    batches in submission order. After Stop they are dropped (the
///    transport only posts flush nudges, which are moot once the loop dies).
class EventLoop {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    /// `events` is the ready epoll event mask (EPOLLIN/EPOLLOUT/EPOLLERR...).
    virtual void OnReady(uint32_t events) = 0;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and spawns the loop thread.
  Status Start();
  /// Wakes and joins the loop thread, then closes the epoll/eventfd. Pending
  /// posted closures are dropped. Idempotent.
  void Stop();

  Status Add(int fd, uint32_t events, Handler* handler);
  Status Modify(int fd, uint32_t events, Handler* handler);
  /// Deregisters `fd`. The caller must not close the fd before removal.
  void Remove(int fd);

  /// Queues `fn` onto the loop thread and wakes it. Returns false (fn
  /// dropped) once Stop has begun.
  bool Post(std::function<void()> fn);

  bool InLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void Run();
  void DrainPosted();
  void Wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  // relaxed flag: loop-exit signal; the eventfd write is the actual wakeup
  // and thread join is the shutdown barrier.
  std::atomic<bool> stop_{false};
  // relaxed: collapses redundant eventfd writes; a spurious extra wakeup is
  // harmless, a missed one is prevented by checking after the exchange.
  std::atomic<bool> wake_pending_{false};
  mutable Mutex post_mu_{LockRank::kTransportLoop, "net.loop.post"};
  std::vector<std::function<void()>> posted_ GUARDED_BY(post_mu_);
  bool accepting_posts_ GUARDED_BY(post_mu_) = false;
};

}  // namespace dpr

#endif  // DPR_NET_EVENT_LOOP_H_
