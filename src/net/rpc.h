#ifndef DPR_NET_RPC_H_
#define DPR_NET_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace dpr {

/// Request handler invoked by a server for each incoming message; fills
/// `response`. Handlers run on the transport's shared executor pool and may
/// be invoked concurrently — including for two requests pipelined on the
/// *same* connection, which may also complete out of order (responses are
/// matched to requests by frame id, never by arrival order).
using RpcHandler = std::function<void(Slice request, std::string* response)>;

/// One message endpoint (a D-FASTER worker or D-Redis proxy listens here).
class RpcServer {
 public:
  virtual ~RpcServer() = default;
  virtual Status Start(RpcHandler handler) = 0;
  virtual void Stop() = 0;
  /// Transport-specific address clients can connect to.
  virtual std::string address() const = 0;
};

/// Client connection supporting pipelined asynchronous calls; responses are
/// matched to requests internally (windowing/batching policy lives in the
/// store client library, not here).
class RpcConnection {
 public:
  virtual ~RpcConnection() = default;

  using ResponseCallback = std::function<void(Status, Slice response)>;

  /// Sends `request`; `callback` fires exactly once (from a transport
  /// thread) with the response or an error.
  virtual void CallAsync(std::string request, ResponseCallback callback) = 0;

  /// Blocking convenience wrapper over CallAsync.
  Status Call(Slice request, std::string* response);
};

}  // namespace dpr

#endif  // DPR_NET_RPC_H_
