#include "net/tcp_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sync.h"
#include "net/event_loop.h"
#include "net/executor.h"
#include "net/frame.h"
#include "net/uring_net.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

using internal::BuildIovecs;
using internal::ConfigureSocket;
using internal::ConsumeWritten;
using internal::kFrameHeader;
using internal::kMaxIov;
using internal::kReadChunk;
using internal::MakeFrame;
using internal::MapSocketError;
using internal::OutFrame;
using internal::ReadGate;
using internal::SocketKind;
using internal::Stats;

// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT). POLLERR/POLLHUP
// fall through as success so the next recv/send reports the real errno.
Status AwaitReady(int fd, short events) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = poll(&pfd, 1, /*timeout_ms=*/-1);
    if (rc > 0) return Status::OK();
    if (rc < 0 && errno != EINTR) return MapSocketError("poll", errno);
  }
}

Status ReadFully(int fd, void* buf, size_t n, size_t* transferred = nullptr) {
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  Status result;
  while (done < n) {
    Stats().recv_calls->Add();
    const ssize_t got = recv(fd, p + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      result = Status::Transient("connection closed");
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking fd with an empty receive buffer mid-message: wait for
      // readability instead of surfacing a desynchronizing error.
      Stats().eagain_waits->Add();
      result = AwaitReady(fd, POLLIN);
      if (!result.ok()) break;
      continue;
    }
    result = MapSocketError("recv", errno);
    break;
  }
  if (transferred != nullptr) *transferred = done;
  return result;
}

Status WriteFully(int fd, const void* buf, size_t n,
                  size_t* transferred = nullptr) {
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  Status result;
  while (done < n) {
    // dprlint: allowed(net-raw-write) single-buffer slow path under the
    // flush layer; short writes are counted right below.
    const ssize_t sent = send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (sent >= 0) {
      if (static_cast<size_t>(sent) < n - done) Stats().short_writes->Add();
      done += static_cast<size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // A full send buffer (small SO_SNDBUF, slow reader) is not an error:
      // aborting here would tear the frame and desync the length-prefixed
      // stream for every later frame on this connection.
      Stats().eagain_waits->Add();
      result = AwaitReady(fd, POLLOUT);
      if (!result.ok()) break;
      continue;
    }
    result = MapSocketError("send", errno);
    break;
  }
  if (transferred != nullptr) *transferred = done;
  return result;
}

// Blocking vectored write: retries until every iovec byte is on the wire or
// a hard error occurs. `iov` is consumed destructively. Uses sendmsg rather
// than writev for MSG_NOSIGNAL (a raw writev to a dead peer raises SIGPIPE).
Status WritevFully(int fd, struct iovec* iov, int iovcnt,
                   size_t* transferred = nullptr) {
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  size_t done = 0;
  int idx = 0;
  Status result;
  while (done < total) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = static_cast<size_t>(iovcnt - idx);
    // dprlint: allowed(net-raw-write) sanctioned vectored-flush helper; the
    // framing layer above carries partial-write offsets.
    const ssize_t sent = sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent >= 0) {
      Stats().writev_calls->Add();
      if (static_cast<size_t>(sent) < total - done) Stats().short_writes->Add();
      done += static_cast<size_t>(sent);
      size_t left = static_cast<size_t>(sent);
      while (idx < iovcnt && left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      }
      if (left > 0) {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
        iov[idx].iov_len -= left;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Same contract as WriteFully: a full send buffer must not tear the
      // frame mid-batch, so wait for writability and resume the iovecs.
      Stats().eagain_waits->Add();
      result = AwaitReady(fd, POLLOUT);
      if (!result.ok()) break;
      continue;
    }
    result = MapSocketError("sendmsg", errno);
    break;
  }
  if (transferred != nullptr) *transferred = done;
  return result;
}

Status ReadFrame(int fd, uint64_t* id, std::string* payload) {
  char header[kFrameHeader];
  DPR_RETURN_NOT_OK(ReadFully(fd, header, kFrameHeader));
  const uint32_t len = DecodeFixed32(header);
  *id = DecodeFixed64(header + 4);
  payload->resize(len);
  if (len > 0) DPR_RETURN_NOT_OK(ReadFully(fd, payload->data(), len));
  Stats().frames_received->Add();
  return Status::OK();
}

// ------------------------------------------------------------------- server

class TcpServer;

// One accepted socket, pinned to one event loop. Frame parsing runs on the
// loop thread; handler execution on the server's shared executor; responses
// queue here and a loop-thread flush coalesces everything queued into one
// sendmsg. Lifetime: the server's registry plus in-flight executor tasks
// hold shared_ptr refs, so a task finishing after the socket closed just
// drops its response.
class ServerConn : public EventLoop::Handler,
                   public std::enable_shared_from_this<ServerConn> {
 public:
  ServerConn(TcpServer* server, EventLoop* loop, int fd, size_t out_budget)
      : server_(server), loop_(loop), fd_(fd), out_budget_(out_budget) {}

  ~ServerConn() override {
    if (fd_ >= 0) close(fd_);
  }

  // Loop thread only.
  void OnReady(uint32_t events) override;

  // Any thread (executor workers). Queues the response and nudges the loop.
  void SendResponse(uint64_t id, std::string payload);

  // Server Stop() path: loops are already joined, so teardown is
  // single-threaded from here.
  void ShutdownFd();

 private:
  void HandleReadable();
  void ParseFrames();
  void FlushOnLoop();
  void UpdateInterest();
  void CloseOnLoop();

  TcpServer* const server_;
  EventLoop* const loop_;
  int fd_;
  const size_t out_budget_;

  // Loop-thread-only state; no lock by construction (single writer thread).
  std::vector<char> input_;
  size_t input_used_ = 0;
  bool want_write_ = false;  // EPOLLOUT armed (flush hit EAGAIN)
  ReadGate read_gate_;       // output over budget; EPOLLIN dropped
  bool closed_ = false;

  Mutex out_mu_{LockRank::kTransport, "net.tcp.server_out"};
  std::deque<OutFrame> out_ GUARDED_BY(out_mu_);
  size_t out_bytes_ GUARDED_BY(out_mu_) = 0;
  // True while a flush is guaranteed to run (posted nudge in flight or
  // EPOLLOUT armed); collapses redundant Post() wakeups under pipelining.
  bool flush_scheduled_ GUARDED_BY(out_mu_) = false;
  // Cleared when the fd dies: late executor responses are dropped instead
  // of queueing on a closed connection forever.
  bool writable_ GUARDED_BY(out_mu_) = true;
};

class TcpServer : public RpcServer, public EventLoop::Handler {
 public:
  TcpServer(uint16_t port, const TcpServerOptions& options)
      : requested_port_(port), options_(options) {
    if (options_.io_threads == 0) options_.io_threads = 1;
    if (options_.executor_threads == 0) options_.executor_threads = 1;
    if (options_.executor_queue_capacity == 0) {
      options_.executor_queue_capacity = 1;
    }
  }

  ~TcpServer() override { Stop(); }

  Status Start(RpcHandler handler) override {
    handler_ = std::move(handler);
    stop_.store(false, std::memory_order_release);
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Status::IOError("socket failed");
    ConfigureSocket(listen_fd_, SocketKind::kListener);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(requested_port_);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError(std::string("bind: ") + strerror(errno));
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    if (listen(listen_fd_, 128) != 0) {
      return Status::IOError(std::string("listen: ") + strerror(errno));
    }
    executor_ = std::make_unique<Executor>(ExecutorOptions{
        options_.executor_threads, options_.executor_queue_capacity,
        "net.tcp.executor"});
    executor_->Start();
    loops_.reserve(options_.io_threads);
    for (uint32_t i = 0; i < options_.io_threads; ++i) {
      loops_.push_back(std::make_unique<EventLoop>());
      DPR_RETURN_NOT_OK(loops_.back()->Start());
    }
    // The listener lives on loop 0; accepted sockets spread round-robin.
    return loops_[0]->Add(listen_fd_, EPOLLIN, this);
  }

  void Stop() override {
    if (stop_.exchange(true)) return;
    // Join the loops first: once no I/O thread is alive, nothing touches
    // the sockets concurrently and teardown is single-threaded. (Late
    // executor responses find Post() rejected and are dropped.)
    for (auto& loop : loops_) loop->Stop();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    // Drain the executor: every accepted request task still runs (tasks
    // observe stop_ and skip the handler; their would-be responses die with
    // the connections below).
    if (executor_) executor_->Shutdown();
    std::map<ServerConn*, std::shared_ptr<ServerConn>> conns;
    {
      MutexLock guard(conns_mu_);
      conns.swap(conns_);
    }
    for (auto& [ptr, conn] : conns) {
      (void)ptr;
      conn->ShutdownFd();
      Stats().server_conns->Sub(1);
    }
  }

  std::string address() const override {
    return "127.0.0.1:" + std::to_string(bound_port_);
  }

  // Listener readiness (loop 0 thread): accept until EAGAIN.
  void OnReady(uint32_t /*events*/) override {
    for (;;) {
      const int fd =
          accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or a transient accept error; epoll re-arms
      }
      Stats().accepted->Add();
      ConfigureSocket(fd, SocketKind::kData);
      EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
      auto conn = std::make_shared<ServerConn>(
          this, loop, fd, options_.max_output_queue_bytes);
      {
        MutexLock guard(conns_mu_);
        conns_[conn.get()] = conn;
      }
      Stats().server_conns->Add(1);
      if (!loop->Add(fd, EPOLLIN, conn.get()).ok()) {
        ForgetConn(conn.get());
        conn->ShutdownFd();
      }
    }
  }

  // Drops the registry ref for a connection that closed itself. The object
  // survives while executor tasks still hold it.
  void ForgetConn(ServerConn* conn) {
    std::shared_ptr<ServerConn> ref;
    {
      MutexLock guard(conns_mu_);
      auto it = conns_.find(conn);
      if (it == conns_.end()) return;
      ref = std::move(it->second);
      conns_.erase(it);
    }
    Stats().server_conns->Sub(1);
  }

  // Loop thread: hand a decoded request to the shared executor. Submit
  // blocks while the bounded queue is full — the loop thread pausing here
  // is precisely the read-throttle the bounded intake exists to provide.
  void Dispatch(std::shared_ptr<ServerConn> conn, uint64_t id,
                std::string request) {
    (void)executor_->Submit(
        [this, conn = std::move(conn), id, request = std::move(request)] {
          if (stop_.load(std::memory_order_acquire)) return;
          std::string response;
          handler_(Slice(request), &response);
          conn->SendResponse(id, std::move(response));
        });
    // false only during Shutdown, when the sockets are closing anyway.
  }

 private:
  uint16_t requested_port_;
  TcpServerOptions options_;
  uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  RpcHandler handler_;
  // acquire/release: executor tasks read it to skip handlers during Stop.
  std::atomic<bool> stop_{true};
  std::unique_ptr<Executor> executor_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;  // loop-0 thread only (accept path)
  Mutex conns_mu_{LockRank::kTransportLoop, "net.tcp.conns"};
  std::map<ServerConn*, std::shared_ptr<ServerConn>> conns_
      GUARDED_BY(conns_mu_);
};

void ServerConn::OnReady(uint32_t events) {
  // Keep a ref for the duration: CloseOnLoop drops the registry ref, which
  // may be the last one outside this frame.
  auto self = shared_from_this();
  if (closed_) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseOnLoop();
    return;
  }
  if (events & EPOLLOUT) {
    FlushOnLoop();
    if (closed_) return;
  }
  if (events & EPOLLIN) HandleReadable();
}

void ServerConn::HandleReadable() {
  bool peer_closed = false;
  bool fatal = false;
  if (input_.size() < input_used_ + kReadChunk) {
    input_.resize(input_used_ + kReadChunk);
  }
  for (;;) {
    Stats().recv_calls->Add();
    const ssize_t got = recv(fd_, input_.data() + input_used_, kReadChunk, 0);
    if (got > 0) {
      input_used_ += static_cast<size_t>(got);
      break;  // one chunk per pass; level-triggered epoll re-reports
    }
    if (got == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    fatal = true;
    break;
  }
  ParseFrames();
  if (peer_closed || fatal) CloseOnLoop();
}

void ServerConn::ParseFrames() {
  bool garbage = false;
  const size_t pos = internal::ParseFrameStream(
      input_.data(), input_used_, &garbage,
      [&](uint64_t id, const char* payload, size_t len) {
        server_->Dispatch(shared_from_this(), id, std::string(payload, len));
      });
  if (garbage) {
    // Not a frame boundary we can trust; the stream is garbage.
    CloseOnLoop();
    return;
  }
  if (pos > 0) {
    memmove(input_.data(), input_.data() + pos, input_used_ - pos);
    input_used_ -= pos;
  }
}

void ServerConn::SendResponse(uint64_t id, std::string payload) {
  bool nudge = false;
  {
    MutexLock guard(out_mu_);
    if (!writable_) return;  // fd gone; the response dies with the conn
    OutFrame f = MakeFrame(id, std::move(payload));
    out_bytes_ += f.size();
    Stats().output_queue_bytes->Add(static_cast<int64_t>(f.size()));
    out_.push_back(std::move(f));
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      nudge = true;
    }
  }
  if (nudge) {
    auto self = shared_from_this();
    // Post rejection means the loop already stopped (server Stop): the
    // queued response is dropped along with the connection.
    (void)loop_->Post([self] { self->FlushOnLoop(); });
  }
}

void ServerConn::FlushOnLoop() {
  if (closed_) return;
  Status fail;
  bool blocked = false;
  {
    MutexLock guard(out_mu_);
    while (!out_.empty()) {
      struct iovec iov[kMaxIov];
      int iovcnt = 0;
      size_t batch_bytes = 0;
      BuildIovecs(out_, iov, &iovcnt, &batch_bytes);
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      // dprlint: allowed(net-raw-write) sanctioned loop-thread coalescing
      // flush; partial writes carry offsets via ConsumeWritten.
      const ssize_t sent = sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Kernel buffer full: arm EPOLLOUT and resume from the partial
          // offsets when the socket drains. flush_scheduled_ stays true.
          Stats().eagain_waits->Add();
          blocked = true;
          break;
        }
        fail = MapSocketError("sendmsg", errno);
        break;
      }
      Stats().writev_calls->Add();
      if (static_cast<size_t>(sent) < batch_bytes) Stats().short_writes->Add();
      const size_t completed =
          ConsumeWritten(&out_, static_cast<size_t>(sent));
      out_bytes_ -= static_cast<size_t>(sent);
      Stats().output_queue_bytes->Sub(sent);
      Stats().frames_sent->Add(completed);
      Stats().writev_frames->Add(completed);
    }
    if (out_.empty()) flush_scheduled_ = false;
  }
  if (!fail.ok()) {
    CloseOnLoop();
    return;
  }
  want_write_ = blocked;
  UpdateInterest();
}

void ServerConn::UpdateInterest() {
  size_t queued;
  {
    MutexLock guard(out_mu_);
    queued = out_bytes_;
  }
  // Backpressure hysteresis shared with the uring backend (see
  // internal::ReadGate): pause reads above the byte budget, resume below
  // half of it, so a slow client draining responses doesn't flap.
  read_gate_.Update(queued, out_budget_);
  uint32_t events = 0;
  if (!read_gate_.paused) events |= EPOLLIN;
  if (want_write_) events |= EPOLLOUT;
  // A failed epoll_ctl here means the fd is already gone; drop the conn.
  if (!loop_->Modify(fd_, events, this).ok()) CloseOnLoop();
}

void ServerConn::CloseOnLoop() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  size_t dropped;
  {
    MutexLock guard(out_mu_);
    writable_ = false;
    dropped = out_bytes_;
    out_.clear();
    out_bytes_ = 0;
  }
  if (dropped > 0) {
    Stats().output_queue_bytes->Sub(static_cast<int64_t>(dropped));
  }
  close(fd_);
  fd_ = -1;
  server_->ForgetConn(this);
}

void ServerConn::ShutdownFd() {
  size_t dropped;
  {
    MutexLock guard(out_mu_);
    writable_ = false;
    dropped = out_bytes_;
    out_.clear();
    out_bytes_ = 0;
  }
  if (dropped > 0) {
    Stats().output_queue_bytes->Sub(static_cast<int64_t>(dropped));
  }
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  closed_ = true;  // loops are joined; no loop thread can race this
}

// ------------------------------------------------------------------- client

// Client side mirrors the server's write path: CallAsync only enqueues a
// frame; a single flusher thread drains the queue with vectored writes, so
// pipelined requests issued back-to-back coalesce into one syscall. The
// flusher is the only thread that dequeues, so there is exactly one
// in-flight flush per connection by construction (the uring client keeps
// the same invariant with a single in-flight SENDMSG SQE).
class TcpConnection : public RpcConnection {
 public:
  TcpConnection(int fd, std::string peer)
      : fd_(fd), peer_scope_(HashBytes(peer.data(), peer.size())) {
    reader_ = std::thread([this] { ReadLoop(); });
    flusher_ = std::thread([this] { FlushLoop(); });
  }

  ~TcpConnection() override {
    {
      MutexLock guard(out_mu_);
      closing_ = true;
    }
    out_cv_.NotifyAll();
    shutdown(fd_, SHUT_RDWR);  // unblocks both the flusher and the reader
    if (flusher_.joinable()) flusher_.join();
    if (reader_.joinable()) reader_.join();
    close(fd_);
    FailPending(Status::Unavailable("connection destroyed"));
  }

  void CallAsync(std::string request, ResponseCallback callback) override {
    bool duplicate = false;
    if (!internal::ApplyClientNetFaults(peer_scope_, callback, &duplicate)) {
      return;
    }
    const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock guard(pending_mu_);
      pending_[id] = std::move(callback);
    }
    bool accepted;
    {
      MutexLock guard(out_mu_);
      accepted = !closing_ && !poisoned_;
      if (accepted) {
        if (duplicate) out_.push_back(MakeFrame(id, request));
        out_.push_back(MakeFrame(id, std::move(request)));
      }
    }
    if (accepted) {
      out_cv_.NotifyOne();
      return;
    }
    ResponseCallback cb = TakePending(id);
    if (cb) cb(Status::Transient("connection closed"), Slice());
  }

 private:
  void Poison() {
    Stats().poisoned->Add();
    {
      MutexLock guard(out_mu_);
      poisoned_ = true;
    }
    shutdown(fd_, SHUT_RDWR);
  }

  void FlushLoop() {
    for (;;) {
      std::deque<OutFrame> batch;
      {
        MutexLock guard(out_mu_);
        out_cv_.Wait(out_mu_, [this]() REQUIRES(out_mu_) {
          return closing_ || !out_.empty();
        });
        if (out_.empty()) return;  // closing, nothing left to send
        // Take everything queued: every request pipelined since the last
        // flush coalesces into the same vectored writes.
        batch.swap(out_);
      }
      SendBatch(&batch);
    }
  }

  void SendBatch(std::deque<OutFrame>* batch) {
    while (!batch->empty()) {
      struct iovec iov[kMaxIov];
      int iovcnt = 0;
      size_t batch_bytes = 0;
      BuildIovecs(*batch, iov, &iovcnt, &batch_bytes);
      size_t written = 0;
      Status s = WritevFully(fd_, iov, iovcnt, &written);
      const size_t completed = ConsumeWritten(batch, written);
      Stats().frames_sent->Add(completed);
      Stats().writev_frames->Add(completed);
      if (!s.ok()) {
        HandleWriteFailure(batch, s);
        return;
      }
    }
  }

  // A write error with bytes of the front frame already on the wire leaves
  // the server reading our next header out of the middle of this payload;
  // nothing sent afterwards would parse. Kill the socket so ReadLoop fails
  // every pending call instead of silently desynchronizing. A clean
  // frame-boundary failure only fails the frames this batch still owned.
  void HandleWriteFailure(std::deque<OutFrame>* batch, const Status& s) {
    if (!batch->empty() && batch->front().offset > 0) Poison();
    for (OutFrame& f : *batch) {
      ResponseCallback cb = TakePending(f.id);
      if (cb) cb(s, Slice());
    }
    batch->clear();
  }

  void ReadLoop() {
    std::string payload;
    uint64_t id = 0;
    for (;;) {
      Status s = ReadFrame(fd_, &id, &payload);
      if (!s.ok()) {
        FailPending(s);
        return;
      }
      ResponseCallback cb = TakePending(id);
      if (cb) cb(Status::OK(), Slice(payload));
    }
  }

  ResponseCallback TakePending(uint64_t id) {
    MutexLock guard(pending_mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return nullptr;
    ResponseCallback cb = std::move(it->second);
    pending_.erase(it);
    return cb;
  }

  void FailPending(const Status& s) {
    std::map<uint64_t, ResponseCallback> orphans;
    {
      MutexLock guard(pending_mu_);
      orphans.swap(pending_);
    }
    for (auto& [id, cb] : orphans) {
      (void)id;
      cb(s, Slice());
    }
  }

  int fd_;
  const uint64_t peer_scope_;
  std::thread reader_;
  std::thread flusher_;
  // relaxed: request-id allocator; uniqueness is all that matters, the
  // id is published to the reader via pending_mu_.
  std::atomic<uint64_t> next_id_{1};
  Mutex out_mu_{LockRank::kTransport, "net.tcp.client_out"};
  CondVar out_cv_;  // wakes the flusher on enqueue or shutdown
  std::deque<OutFrame> out_ GUARDED_BY(out_mu_);
  bool closing_ GUARDED_BY(out_mu_) = false;
  bool poisoned_ GUARDED_BY(out_mu_) = false;
  Mutex pending_mu_{LockRank::kTransport, "net.tcp.pending"};
  std::map<uint64_t, ResponseCallback> pending_ GUARDED_BY(pending_mu_);
};

// Opens and connects the socket half of ConnectTcp; shared by both
// backends (connection establishment stays synchronous either way).
Status OpenClientSocket(const std::string& address, int* out_fd) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address must be host:port");
  }
  const std::string host = address.substr(0, colon);
  const int port = atoi(address.c_str() + colon + 1);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return MapSocketError("connect", err);
  }
  ConfigureSocket(fd, SocketKind::kData);
  *out_fd = fd;
  return Status::OK();
}

}  // namespace

NetBackend ResolveNetBackend(NetBackend requested) {
  switch (requested) {
    case NetBackend::kEpoll:
      return NetBackend::kEpoll;
    case NetBackend::kIoUring:
      return NetUringSupported() ? NetBackend::kIoUring : NetBackend::kEpoll;
    case NetBackend::kAuto:
      return NetUringSupported() ? NetBackend::kIoUring : NetBackend::kEpoll;
  }
  return NetBackend::kEpoll;
}

std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port) {
  return MakeTcpServer(port, TcpServerOptions{});
}

std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port,
                                         const TcpServerOptions& options) {
  if (ResolveNetBackend(options.backend) == NetBackend::kIoUring) {
    auto server = internal::TryMakeUringTcpServer(port, options);
    if (server != nullptr) return server;
    // Supported-looking kernel but ring setup failed right now (fd limits,
    // memlock); serve epoll instead of failing the caller.
    if (options.backend != NetBackend::kEpoll) {
      Stats().uring_fallbacks->Add();
    }
  } else if (options.backend == NetBackend::kIoUring) {
    Stats().uring_fallbacks->Add();
  }
  return std::make_unique<TcpServer>(port, options);
}

Status ConnectTcp(const std::string& address,
                  std::unique_ptr<RpcConnection>* out) {
  return ConnectTcp(address, TcpClientOptions{}, out);
}

Status ConnectTcp(const std::string& address, const TcpClientOptions& options,
                  std::unique_ptr<RpcConnection>* out) {
  int fd = -1;
  DPR_RETURN_NOT_OK(OpenClientSocket(address, &fd));
  if (ResolveNetBackend(options.backend) == NetBackend::kIoUring) {
    auto conn = internal::TryWrapUringClientFd(fd, address);
    if (conn != nullptr) {
      *out = std::move(conn);
      return Status::OK();
    }
    if (options.backend != NetBackend::kEpoll) {
      Stats().uring_fallbacks->Add();
    }
  } else if (options.backend == NetBackend::kIoUring) {
    Stats().uring_fallbacks->Add();
  }
  *out = std::make_unique<TcpConnection>(fd, address);
  return Status::OK();
}

namespace internal {

Status TcpReadFully(int fd, void* buf, size_t n, size_t* transferred) {
  return ReadFully(fd, buf, n, transferred);
}

Status TcpWriteFully(int fd, const void* buf, size_t n, size_t* transferred) {
  return WriteFully(fd, buf, n, transferred);
}

Status TcpWritevFully(int fd, struct iovec* iov, int iovcnt,
                      size_t* transferred) {
  return WritevFully(fd, iov, iovcnt, transferred);
}

std::unique_ptr<RpcConnection> WrapClientFdForTest(int fd,
                                                   NetBackend backend) {
  if (ResolveNetBackend(backend) == NetBackend::kIoUring &&
      backend != NetBackend::kEpoll) {
    return TryWrapUringClientFd(fd, "test-wrapped-fd");
  }
  return std::make_unique<TcpConnection>(fd, "test-wrapped-fd");
}

}  // namespace internal

}  // namespace dpr
