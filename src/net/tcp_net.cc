#include "net/tcp_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/hash.h"
#include "common/sync.h"
#include "common/logging.h"
#include "fault/fault_plane.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

constexpr size_t kFrameHeader = 12;  // u32 length + u64 request id

// Classify a socket errno: peer resets and unreachable routes are transient
// (reconnect and retry), timeouts carry their own code, anything else is a
// hard I/O error.
Status MapSocketError(const char* op, int err) {
  const std::string msg = std::string(op) + ": " + strerror(err);
  switch (err) {
    case ECONNRESET:
    case EPIPE:
    case ECONNREFUSED:
    case ECONNABORTED:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return Status::Transient(msg);
    case ETIMEDOUT:
      return Status::TimedOut(msg);
    default:
      return Status::IOError(msg);
  }
}

// Call-site-cached registry pointers: one registration per process, relaxed
// atomics after that.
struct TcpCounters {
  Counter* frames_sent;
  Counter* frames_received;
  Counter* short_writes;
  Counter* eagain_waits;
  Counter* poisoned;
};

const TcpCounters& Stats() {
  static const TcpCounters counters = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return TcpCounters{r.counter("net.tcp.frames_sent"),
                       r.counter("net.tcp.frames_received"),
                       r.counter("net.tcp.short_writes"),
                       r.counter("net.tcp.eagain_waits"),
                       r.counter("net.tcp.poisoned")};
  }();
  return counters;
}

// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT). POLLERR/POLLHUP
// fall through as success so the next recv/send reports the real errno.
Status AwaitReady(int fd, short events) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = poll(&pfd, 1, /*timeout_ms=*/-1);
    if (rc > 0) return Status::OK();
    if (rc < 0 && errno != EINTR) return MapSocketError("poll", errno);
  }
}

Status ReadFully(int fd, void* buf, size_t n, size_t* transferred = nullptr) {
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  Status result;
  while (done < n) {
    const ssize_t got = recv(fd, p + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      result = Status::Transient("connection closed");
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking fd with an empty receive buffer mid-message: wait for
      // readability instead of surfacing a desynchronizing error.
      Stats().eagain_waits->Add();
      result = AwaitReady(fd, POLLIN);
      if (!result.ok()) break;
      continue;
    }
    result = MapSocketError("recv", errno);
    break;
  }
  if (transferred != nullptr) *transferred = done;
  return result;
}

Status WriteFully(int fd, const void* buf, size_t n,
                  size_t* transferred = nullptr) {
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  Status result;
  while (done < n) {
    const ssize_t sent = send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (sent >= 0) {
      if (static_cast<size_t>(sent) < n - done) Stats().short_writes->Add();
      done += static_cast<size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // A full send buffer (small SO_SNDBUF, slow reader) is not an error:
      // aborting here would tear the frame and desync the length-prefixed
      // stream for every later frame on this connection.
      Stats().eagain_waits->Add();
      result = AwaitReady(fd, POLLOUT);
      if (!result.ok()) break;
      continue;
    }
    result = MapSocketError("send", errno);
    break;
  }
  if (transferred != nullptr) *transferred = done;
  return result;
}

// Writes one frame under the connection's write mutex. On failure,
// `*mid_frame` reports whether bytes already hit the wire: a torn frame
// means the peer's stream position is corrupt and the connection must be
// poisoned, while a clean zero-byte failure leaves the stream aligned.
Status WriteFrame(int fd, Mutex& write_mu, uint64_t id, Slice payload,
                  bool* mid_frame = nullptr) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed64(&frame, id);
  frame.append(payload.data(), payload.size());
  MutexLock guard(write_mu);
  size_t written = 0;
  Status s = WriteFully(fd, frame.data(), frame.size(), &written);
  if (mid_frame != nullptr) *mid_frame = !s.ok() && written > 0;
  if (s.ok()) Stats().frames_sent->Add();
  return s;
}

Status ReadFrame(int fd, uint64_t* id, std::string* payload) {
  char header[kFrameHeader];
  DPR_RETURN_NOT_OK(ReadFully(fd, header, kFrameHeader));
  const uint32_t len = DecodeFixed32(header);
  *id = DecodeFixed64(header + 4);
  payload->resize(len);
  if (len > 0) DPR_RETURN_NOT_OK(ReadFully(fd, payload->data(), len));
  Stats().frames_received->Add();
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// ------------------------------------------------------------------- server

class TcpServer : public RpcServer {
 public:
  explicit TcpServer(uint16_t port) : requested_port_(port) {}

  ~TcpServer() override { Stop(); }

  Status Start(RpcHandler handler) override {
    handler_ = std::move(handler);
    const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return Status::IOError("socket failed");
    listen_fd_.store(listen_fd);
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(requested_port_);
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError(std::string("bind: ") + strerror(errno));
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    if (listen(listen_fd, 128) != 0) {
      return Status::IOError(std::string("listen: ") + strerror(errno));
    }
    stop_.store(false);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::OK();
  }

  void Stop() override {
    if (stop_.exchange(true)) return;
    const int listen_fd = listen_fd_.exchange(-1);
    if (listen_fd >= 0) {
      shutdown(listen_fd, SHUT_RDWR);
      close(listen_fd);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<int> fds;
    std::vector<std::thread> threads;
    {
      MutexLock guard(conns_mu_);
      fds = conn_fds_;
      threads.swap(conn_threads_);
    }
    for (int fd : fds) shutdown(fd, SHUT_RDWR);
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    for (int fd : fds) close(fd);
  }

  std::string address() const override {
    return "127.0.0.1:" + std::to_string(bound_port_);
  }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      const int listen_fd = listen_fd_.load();
      if (listen_fd < 0) return;
      const int fd = accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (stop_.load()) return;
        continue;
      }
      SetNoDelay(fd);
      MutexLock guard(conns_mu_);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { ConnLoop(fd); });
    }
  }

  void ConnLoop(int fd) {
    // One writer thread today, but keep frames atomic.
    Mutex write_mu{LockRank::kTransport, "net.tcp.server_write"};
    std::string request;
    std::string response;
    uint64_t id = 0;
    while (!stop_.load()) {
      if (!ReadFrame(fd, &id, &request).ok()) return;
      response.clear();
      handler_(Slice(request), &response);
      if (!WriteFrame(fd, write_mu, id, Slice(response)).ok()) return;
    }
  }

  uint16_t requested_port_;
  uint16_t bound_port_ = 0;
  // Atomic: Stop() invalidates it while AcceptLoop is blocked in accept().
  std::atomic<int> listen_fd_{-1};
  RpcHandler handler_;
  // relaxed flag: loop-exit signal only; fd shutdown (a syscall barrier)
  // does the actual cross-thread handoff.
  std::atomic<bool> stop_{true};
  std::thread accept_thread_;
  Mutex conns_mu_{LockRank::kTransport, "net.tcp.conns"};
  std::vector<int> conn_fds_ GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(conns_mu_);
};

// ------------------------------------------------------------------- client

class TcpConnection : public RpcConnection {
 public:
  TcpConnection(int fd, std::string peer)
      : fd_(fd), peer_scope_(HashBytes(peer.data(), peer.size())) {
    reader_ = std::thread([this] { ReadLoop(); });
  }

  ~TcpConnection() override {
    shutdown(fd_, SHUT_RDWR);
    if (reader_.joinable()) reader_.join();
    close(fd_);
    FailPending(Status::Unavailable("connection destroyed"));
  }

  void CallAsync(std::string request, ResponseCallback callback) override {
    FaultPlane& plane = FaultPlane::Instance();
    bool duplicate = false;
    if (plane.enabled()) {
      if (plane.ShouldFire(faults::kNetPartition, peer_scope_)) {
        callback(Status::Transient("injected partition"), Slice());
        return;
      }
      if (plane.ShouldFire(faults::kNetDrop, peer_scope_)) {
        callback(Status::TimedOut("injected drop"), Slice());
        return;
      }
      uint64_t delay_us = 0;
      if (plane.ShouldFire(faults::kNetDelay, peer_scope_, &delay_us)) {
        // Delays the caller rather than the frame: the in-order byte stream
        // has no per-frame timer, and every DPR client issues from a
        // dedicated flusher/retry thread that tolerates blocking.
        SleepMicros(delay_us);
      }
      duplicate = plane.ShouldFire(faults::kNetDuplicate, peer_scope_);
    }
    const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock guard(pending_mu_);
      pending_[id] = std::move(callback);
    }
    bool mid_frame = false;
    if (duplicate) {
      // Retransmit with the same id: the server handles the frame twice,
      // the first response resolves the call, and ReadLoop drops the loser
      // (unknown ids are ignored), exactly like a duplicated datagram.
      (void)WriteFrame(fd_, write_mu_, id, Slice(request), &mid_frame);
      if (mid_frame) Poison();
    }
    Status s = WriteFrame(fd_, write_mu_, id, Slice(request), &mid_frame);
    if (!s.ok()) {
      // A frame torn partway through leaves the server reading our next
      // header out of the middle of this payload; nothing sent afterwards
      // would parse. Kill the socket so ReadLoop fails every pending call
      // instead of silently desynchronizing.
      if (mid_frame) Poison();
      ResponseCallback cb;
      {
        MutexLock guard(pending_mu_);
        auto it = pending_.find(id);
        if (it != pending_.end()) {
          cb = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (cb) cb(s, Slice());
    }
  }

 private:
  void Poison() {
    Stats().poisoned->Add();
    shutdown(fd_, SHUT_RDWR);
  }

  void ReadLoop() {
    std::string payload;
    uint64_t id = 0;
    for (;;) {
      Status s = ReadFrame(fd_, &id, &payload);
      if (!s.ok()) {
        FailPending(s);
        return;
      }
      ResponseCallback cb;
      {
        MutexLock guard(pending_mu_);
        auto it = pending_.find(id);
        if (it != pending_.end()) {
          cb = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (cb) cb(Status::OK(), Slice(payload));
    }
  }

  void FailPending(const Status& s) {
    std::map<uint64_t, ResponseCallback> orphans;
    {
      MutexLock guard(pending_mu_);
      orphans.swap(pending_);
    }
    for (auto& [id, cb] : orphans) {
      (void)id;
      cb(s, Slice());
    }
  }

  int fd_;
  const uint64_t peer_scope_;
  Mutex write_mu_{LockRank::kTransport, "net.tcp.client_write"};
  std::thread reader_;
  // relaxed: request-id allocator; uniqueness is all that matters, the
  // id is published to the reader via pending_mu_.
  std::atomic<uint64_t> next_id_{1};
  Mutex pending_mu_{LockRank::kTransport, "net.tcp.pending"};
  std::map<uint64_t, ResponseCallback> pending_ GUARDED_BY(pending_mu_);
};

}  // namespace

std::unique_ptr<RpcServer> MakeTcpServer(uint16_t port) {
  return std::make_unique<TcpServer>(port);
}

Status ConnectTcp(const std::string& address,
                  std::unique_ptr<RpcConnection>* out) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address must be host:port");
  }
  const std::string host = address.substr(0, colon);
  const int port = atoi(address.c_str() + colon + 1);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return MapSocketError("connect", err);
  }
  SetNoDelay(fd);
  *out = std::make_unique<TcpConnection>(fd, address);
  return Status::OK();
}

namespace internal {

Status TcpReadFully(int fd, void* buf, size_t n, size_t* transferred) {
  return ReadFully(fd, buf, n, transferred);
}

Status TcpWriteFully(int fd, const void* buf, size_t n, size_t* transferred) {
  return WriteFully(fd, buf, n, transferred);
}

}  // namespace internal

}  // namespace dpr
