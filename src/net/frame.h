#ifndef DPR_NET_FRAME_H_
#define DPR_NET_FRAME_H_

// Wire-format and flush-path machinery shared by both TCP transport
// backends (the epoll event loop in tcp_net.cc and the io_uring loop in
// uring_net.cc). Everything here encodes a contract both backends must
// keep identically:
//   * frames are [u32 payload-length][u64 request-id][payload];
//   * a flush batch covers at most kMaxIov/2 frames (header + payload
//     iovec each), pointed at in place — payloads are never copied into a
//     staging buffer;
//   * partial writes carry a per-frame offset forward (OutFrame::offset);
//   * read backpressure pauses above the output-queue byte budget and
//     resumes below half of it (ReadGate — the single tested hysteresis,
//     not per-backend literals);
//   * client-side fault probes (drop/duplicate/delay/partition) fire on
//     the submit path of whichever backend carries the call.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "common/coding.h"
#include "common/status.h"
#include "net/rpc.h"

struct iovec;  // <sys/uio.h>

namespace dpr {

class Counter;
class Gauge;

namespace internal {

constexpr size_t kFrameHeader = 12;  // u32 length + u64 request id

// Upper bound on a single frame's payload. A length prefix beyond this is
// garbage (a desynchronized or hostile peer), and honoring it would pin an
// arbitrarily large allocation waiting for bytes that never come.
constexpr uint32_t kMaxFramePayload = 256u << 20;

// iovec budget per flush syscall/SQE: every queued frame contributes a
// header iovec and a payload iovec, so one sendmsg moves up to kMaxIov/2
// frames.
constexpr int kMaxIov = 64;

// Bytes pulled off a readable socket per event-loop pass (epoll backend)
// and the provided-buffer size fed to multishot recv (uring backend).
constexpr size_t kReadChunk = 64 * 1024;

// Classify a socket errno: peer resets and unreachable routes are transient
// (reconnect and retry), timeouts carry their own code, anything else is a
// hard I/O error.
Status MapSocketError(const char* op, int err);

// Call-site-cached registry pointers: one registration per process, relaxed
// atomics after that. Gauges move by deltas so concurrent servers aggregate.
// net.tcp.* series cover both backends (frame/byte accounting is backend-
// independent); net.uring.* series exist only for the ring loop.
struct TcpCounters {
  Counter* frames_sent;
  Counter* frames_received;
  Counter* short_writes;
  Counter* eagain_waits;
  Counter* poisoned;
  Counter* writev_calls;     // coalescing flush syscalls (sendmsg, epoll)
  Counter* writev_frames;    // frames completed by coalesced flushes
  Counter* recv_calls;       // recv(2) syscalls (epoll read path)
  Counter* accepted;         // server sockets accepted
  Gauge* output_queue_bytes;  // bytes queued awaiting flush, all server conns
  Gauge* server_conns;        // live accepted connections
  // io_uring backend series (see DESIGN.md §4l syscall accounting):
  Counter* uring_sqe_batches;   // io_uring_enter calls from net loops
  Counter* uring_cqe_reaped;    // CQEs consumed by net loops
  Counter* uring_buffer_ring_exhausted;  // recv hit -ENOBUFS
  Counter* uring_resubmits;     // multishot re-arms + partial-send resubmits
  Counter* uring_fallbacks;     // uring requested but epoll served
};

const TcpCounters& Stats();

// Shared socket configuration. Data sockets get TCP_NODELAY (frames are
// small and pipelined; Nagle would serialize round trips behind delayed
// ACKs), listeners get SO_REUSEADDR (tests and restarts rebind fixed ports
// without waiting out TIME_WAIT).
enum class SocketKind { kListener, kData };
void ConfigureSocket(int fd, SocketKind kind);

// One queued outbound frame. Header and payload stay separate so flushes
// point iovecs at them in place — the payload is never copied into a
// staging buffer. `offset` tracks bytes already on the wire when a previous
// flush stopped mid-frame (partial write).
struct OutFrame {
  char header[kFrameHeader];
  std::string payload;
  size_t offset = 0;
  uint64_t id = 0;

  size_t size() const { return kFrameHeader + payload.size(); }
  size_t remaining() const { return size() - offset; }
};

OutFrame MakeFrame(uint64_t id, std::string payload);

// Points up to kMaxIov iovecs at the queued frames, honoring the front
// frame's partial-write offset. Returns the frame count covered (the last
// may be covered only partially if the iovec budget ran out mid-queue —
// harmless, the next flush picks it back up). *bytes gets the batch size.
int BuildIovecs(std::deque<OutFrame>& out, struct iovec* iov, int* iovcnt,
                size_t* bytes);

// Advances frame offsets past `wrote` flushed bytes, popping frames that
// completed. Returns how many frames finished.
size_t ConsumeWritten(std::deque<OutFrame>* out, size_t wrote);

// Parses every complete frame out of [data, data+len), invoking
// fn(request_id, payload_ptr, payload_len) per frame. Returns the bytes
// consumed (a trailing partial frame stays unconsumed for the caller to
// carry forward). Sets *garbage when a length prefix exceeds
// kMaxFramePayload — the stream is unrecoverable and the connection must
// close. Bumps net.tcp.frames_received per frame (via NoteFrameReceived,
// an out-of-line shim so this header does not pull in the metrics plane).
void NoteFrameReceived();

template <typename Fn>
size_t ParseFrameStream(const char* data, size_t len, bool* garbage,
                        Fn&& fn);

// Read-backpressure hysteresis shared by both backends: pause reads above
// the per-connection output-byte budget, resume below half of it, so a
// slow client draining responses doesn't flap the read arm.
constexpr size_t ResumeReadsBelow(size_t budget) { return budget / 2; }

struct ReadGate {
  bool paused = false;

  // Folds the current queue depth in; returns true when the pause state
  // flipped (the caller must re-arm or cancel its read interest).
  bool Update(size_t queued_bytes, size_t budget) {
    if (!paused && queued_bytes > budget) {
      paused = true;
      return true;
    }
    if (paused && queued_bytes < ResumeReadsBelow(budget)) {
      paused = false;
      return true;
    }
    return false;
  }
};

// Client-submit-path fault probes, shared by both backends so injected
// drop/duplicate/delay/partition faults fire regardless of which ring
// carries the frame. Returns false when the call was consumed by a fault
// (`callback` has already been invoked); otherwise the caller must send,
// twice with the same id when *duplicate was set (the server handles the
// frame twice, the first response resolves the call, and the loser is
// dropped as an unknown id — exactly like a duplicated datagram).
bool ApplyClientNetFaults(uint64_t peer_scope,
                          const RpcConnection::ResponseCallback& callback,
                          bool* duplicate);

// --- implementation ---

template <typename Fn>
size_t ParseFrameStream(const char* data, size_t len, bool* garbage,
                        Fn&& fn) {
  size_t pos = 0;
  while (len - pos >= kFrameHeader) {
    const uint32_t frame_len = DecodeFixed32(data + pos);
    if (frame_len > kMaxFramePayload) {
      *garbage = true;
      return pos;
    }
    if (len - pos < kFrameHeader + frame_len) break;
    const uint64_t id = DecodeFixed64(data + pos + 4);
    NoteFrameReceived();
    fn(id, data + pos + kFrameHeader, static_cast<size_t>(frame_len));
    pos += kFrameHeader + frame_len;
  }
  return pos;
}

}  // namespace internal

}  // namespace dpr

#endif  // DPR_NET_FRAME_H_
