#include "respstore/resp_store.h"

#include <utility>

#include "common/coding.h"
#include "common/logging.h"
#include "storage/fsync_scheduler.h"

namespace dpr {

namespace {
// Snapshot-log record kinds.
constexpr uint64_t kRollbackMarker = ~uint64_t{0};

std::string SerializeMap(const std::unordered_map<std::string, std::string>& m) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    PutLengthPrefixed(&out, k);
    PutLengthPrefixed(&out, v);
  }
  return out;
}

bool DeserializeMap(Slice payload,
                    std::unordered_map<std::string, std::string>* m) {
  Decoder dec(payload);
  uint32_t n;
  if (!dec.GetFixed32(&n)) return false;
  m->clear();
  m->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice k;
    Slice v;
    if (!dec.GetLengthPrefixed(&k) || !dec.GetLengthPrefixed(&v)) return false;
    m->emplace(k.ToString(), v.ToString());
  }
  return true;
}

}  // namespace

void RespCommand::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(op));
  PutLengthPrefixed(dst, key);
  PutLengthPrefixed(dst, value);
}

bool RespCommand::DecodeFrom(Slice input, size_t* consumed) {
  Decoder dec(input);
  uint8_t op_byte;
  Slice k;
  Slice v;
  if (!dec.GetBytes(&op_byte, 1) || !dec.GetLengthPrefixed(&k) ||
      !dec.GetLengthPrefixed(&v)) {
    return false;
  }
  op = static_cast<RespOp>(op_byte);
  key = k.ToString();
  value = v.ToString();
  if (consumed != nullptr) *consumed = input.size() - dec.remaining();
  return true;
}

void RespReply::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(dst, value);
}

bool RespReply::DecodeFrom(Slice input, size_t* consumed) {
  Decoder dec(input);
  uint8_t code;
  Slice v;
  if (!dec.GetBytes(&code, 1) || !dec.GetLengthPrefixed(&v)) return false;
  status = Status(static_cast<Status::Code>(code), "");
  value = v.ToString();
  if (consumed != nullptr) *consumed = input.size() - dec.remaining();
  return true;
}

RespStore::RespStore(RespStoreOptions options)
    : options_(std::move(options)),
      snap_log_(options_.snapshot_device != nullptr
                    ? std::move(options_.snapshot_device)
                    : std::make_unique<MemoryDevice>()) {
  if (options_.aof_enabled && options_.aof_device == nullptr) {
    options_.aof_device = std::make_unique<MemoryDevice>();
  }
  LoadDurableSnapshots();
  save_thread_ = std::thread([this] { SaveLoop(); });
}

RespStore::~RespStore() {
  {
    MutexLock guard(save_mu_);
    stop_save_ = true;
  }
  save_cv_.NotifyAll();
  if (save_thread_.joinable()) save_thread_.join();
}

void RespStore::LoadDurableSnapshots() {
  MutexLock guard(save_mu_);
  durable_snapshots_.clear();
  Status s = snap_log_.Replay([this](uint64_t offset, Slice record) {
    if (record.size() < 8) return;
    const uint64_t tag = DecodeFixed64(record.data());
    if (tag == kRollbackMarker) {
      if (record.size() < 16) return;
      const uint64_t keep = DecodeFixed64(record.data() + 8);
      for (auto it = durable_snapshots_.upper_bound(keep);
           it != durable_snapshots_.end();) {
        it = durable_snapshots_.erase(it);
      }
    } else {
      durable_snapshots_[tag] = offset;
    }
  });
  DPR_CHECK_MSG(s.ok(), "snapshot log replay: %s", s.ToString().c_str());
}

Status RespStore::AppendAof(const RespCommand& command) {
  std::string rec;
  command.EncodeTo(&rec);
  DPR_RETURN_NOT_OK(SyncIo::Write(options_.aof_device.get(),
                                  options_.aof_device->Size(), rec.data(),
                                  rec.size()));
  // appendfsync=always; under a group-commit scheduler concurrent AOF
  // appends across shards sharing a device coalesce into one fsync.
  if (options_.fsync_scheduler != nullptr) {
    return options_.fsync_scheduler->SyncNow(options_.aof_device.get());
  }
  return SyncIo::Fsync(options_.aof_device.get());
}

RespReply RespStore::Execute(const RespCommand& command) {
  RespReply reply;
  switch (command.op) {
    case RespOp::kGet: {
      MutexLock guard(mu_);
      auto it = map_.find(command.key);
      if (it == map_.end()) {
        reply.status = Status::NotFound();
      } else {
        reply.value = it->second;
      }
      return reply;
    }
    case RespOp::kSet: {
      {
        MutexLock guard(mu_);
        map_[command.key] = command.value;
      }
      if (options_.aof_enabled) reply.status = AppendAof(command);
      return reply;
    }
    case RespOp::kDel: {
      {
        MutexLock guard(mu_);
        map_.erase(command.key);
      }
      if (options_.aof_enabled) reply.status = AppendAof(command);
      return reply;
    }
    case RespOp::kIncr: {
      uint64_t delta = 0;
      if (command.value.size() == 8) {
        memcpy(&delta, command.value.data(), 8);
      }
      uint64_t updated;
      {
        MutexLock guard(mu_);
        std::string& cell = map_[command.key];
        uint64_t cur = 0;
        if (cell.size() == 8) memcpy(&cur, cell.data(), 8);
        updated = cur + delta;
        cell.assign(reinterpret_cast<const char*>(&updated), 8);
      }
      reply.value.assign(reinterpret_cast<const char*>(&updated), 8);
      if (options_.aof_enabled) reply.status = AppendAof(command);
      return reply;
    }
    case RespOp::kBgSave: {
      uint64_t token = 0;
      if (command.value.size() == 8) memcpy(&token, command.value.data(), 8);
      return DoBgSave(token);
    }
    case RespOp::kLastSave: {
      const uint64_t last = LastSave();
      reply.value.assign(reinterpret_cast<const char*>(&last), 8);
      return reply;
    }
    case RespOp::kRestore: {
      uint64_t version = 0;
      if (command.value.size() == 8) memcpy(&version, command.value.data(), 8);
      return DoRestore(version);
    }
  }
  reply.status = Status::InvalidArgument("unknown command");
  return reply;
}

Status RespStore::ExecuteBatch(Slice batch, std::string* replies) {
  size_t pos = 0;
  RespCommand command;
  while (pos < batch.size()) {
    size_t consumed = 0;
    if (!command.DecodeFrom(Slice(batch.data() + pos, batch.size() - pos),
                            &consumed)) {
      return Status::Corruption("malformed command batch");
    }
    pos += consumed;
    RespReply reply = Execute(command);
    reply.EncodeTo(replies);
  }
  return Status::OK();
}

RespReply RespStore::DoBgSave(uint64_t token) {
  RespReply reply;
  std::string payload;
  {
    // Snapshot the map. Real Redis forks for copy-on-write; copying under
    // the command lock has the same observable semantics (a point-in-time
    // image) at the cost of a brief pause — see DESIGN.md.
    MutexLock guard(mu_);
    payload = SerializeMap(map_);
  }
  {
    MutexLock guard(save_mu_);
    save_queue_.push_back(SaveJob{token, std::move(payload)});
  }
  save_cv_.NotifyOne();
  return reply;
}

void RespStore::SaveLoop() {
  for (;;) {
    SaveJob job;
    {
      MutexLock lock(save_mu_);
      save_cv_.Wait(save_mu_,
                    [this] { return stop_save_ || !save_queue_.empty(); });
      if (stop_save_ && save_queue_.empty()) return;
      job = std::move(save_queue_.front());
      save_queue_.pop_front();
      save_in_progress_ = true;
    }
    std::string record;
    PutFixed64(&record, job.token);
    record += job.payload;
    uint64_t offset = 0;
    Status s = snap_log_.Append(record, &offset);
    if (s.ok()) s = snap_log_.Sync();
    {
      MutexLock guard(save_mu_);
      if (s.ok()) {
        durable_snapshots_[job.token] = offset;
      } else {
        DPR_ERROR("bgsave v%llu failed: %s",
                  static_cast<unsigned long long>(job.token),
                  s.ToString().c_str());
      }
      save_in_progress_ = false;
    }
    save_done_cv_.NotifyAll();
  }
}

void RespStore::WaitForSave() {
  MutexLock lock(save_mu_);
  save_done_cv_.Wait(
      save_mu_, [this] { return save_queue_.empty() && !save_in_progress_; });
}

uint64_t RespStore::LastSave() const {
  MutexLock guard(save_mu_);
  return durable_snapshots_.empty() ? 0 : durable_snapshots_.rbegin()->first;
}

RespReply RespStore::DoRestore(uint64_t version) {
  RespReply reply;
  WaitForSave();
  uint64_t token = 0;
  uint64_t offset = 0;
  bool found = false;
  {
    MutexLock guard(save_mu_);
    for (auto it = durable_snapshots_.rbegin();
         it != durable_snapshots_.rend(); ++it) {
      if (it->first <= version) {
        token = it->first;
        offset = it->second;
        found = true;
        break;
      }
    }
  }
  std::unordered_map<std::string, std::string> image;
  if (found) {
    // Locate the payload by replaying to the recorded offset.
    bool loaded = false;
    Status s = snap_log_.Replay([&](uint64_t off, Slice record) {
      if (off == offset && record.size() >= 8) {
        loaded = DeserializeMap(
            Slice(record.data() + 8, record.size() - 8), &image);
      }
    });
    if (!s.ok() || !loaded) {
      reply.status = Status::Corruption("snapshot load failed");
      return reply;
    }
  }
  {
    MutexLock guard(mu_);
    map_ = std::move(image);
  }
  // Durably discard newer snapshots so LASTSAVE never reports rolled-back
  // tokens after a crash.
  std::string marker;
  PutFixed64(&marker, kRollbackMarker);
  PutFixed64(&marker, token);
  Status s = snap_log_.Append(marker);
  if (s.ok()) s = snap_log_.Sync();
  if (s.ok()) {
    MutexLock guard(save_mu_);
    for (auto it = durable_snapshots_.upper_bound(token);
         it != durable_snapshots_.end();) {
      it = durable_snapshots_.erase(it);
    }
  }
  reply.status = s;
  reply.value.assign(reinterpret_cast<const char*>(&token), 8);
  return reply;
}

void RespStore::SimulateCrash() {
  WaitForSave();
  {
    MutexLock guard(mu_);
    map_.clear();
  }
  snap_log_.device()->SimulateCrash();
  if (options_.aof_device != nullptr) options_.aof_device->SimulateCrash();
  LoadDurableSnapshots();
}

uint64_t RespStore::size() const {
  MutexLock guard(mu_);
  return map_.size();
}

}  // namespace dpr
