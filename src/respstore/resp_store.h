#ifndef DPR_RESPSTORE_RESP_STORE_H_
#define DPR_RESPSTORE_RESP_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/wal.h"

namespace dpr {

/// Command set of the Redis stand-in. Commands are length-prefixed binary
/// (equivalent in role to RESP); batches are concatenations of commands.
enum class RespOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kDel = 3,
  kIncr = 4,      // 8-byte little-endian integer add
  kBgSave = 5,    // argument: version token; starts a background snapshot
  kLastSave = 6,  // returns the largest durable snapshot token
  kRestore = 7,   // argument: version; reload largest snapshot <= version
};

struct RespCommand {
  RespOp op;
  std::string key;
  std::string value;  // also carries the u64 argument for BGSAVE/RESTORE

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed);
};

struct RespReply {
  Status status;
  std::string value;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed);
};

struct RespStoreOptions {
  /// Device holding snapshot images (BGSAVE target).
  std::unique_ptr<Device> snapshot_device;
  /// When set, every write is appended to this append-only file and fsync'd
  /// before the command returns — Redis's appendfsync=always, used for the
  /// "synchronous recoverability" comparison (paper §7.6).
  std::unique_ptr<Device> aof_device;
  bool aof_enabled = false;
  /// Optional per-box group-commit scheduler (not owned; must outlive the
  /// store): AOF fsyncs from shards sharing a device coalesce.
  GroupCommitScheduler* fsync_scheduler = nullptr;
};

/// Unmodified-cache-store stand-in for Redis (paper §6): a single-threaded
/// in-memory hash map with BGSAVE-style background snapshots, LASTSAVE
/// polling, and restart-based restore. It knows nothing about DPR — the
/// D-Redis wrapper adds that from the outside via libDPR.
class RespStore {
 public:
  explicit RespStore(RespStoreOptions options);
  ~RespStore();

  RespStore(const RespStore&) = delete;
  RespStore& operator=(const RespStore&) = delete;

  /// Executes one command (serialized internally; Redis is single-threaded).
  RespReply Execute(const RespCommand& command);

  /// Executes an encoded command batch, appending encoded replies.
  Status ExecuteBatch(Slice batch, std::string* replies);

  /// Largest durable snapshot token (LASTSAVE).
  uint64_t LastSave() const;

  /// Drops all volatile state and unsynced storage, as a crash would;
  /// the caller restores via a kRestore command afterwards.
  void SimulateCrash();

  /// Blocks until no background save is running (test helper).
  void WaitForSave();

  uint64_t size() const;

 private:
  RespReply DoBgSave(uint64_t token);
  RespReply DoRestore(uint64_t version);
  void SaveLoop();
  Status AppendAof(const RespCommand& command);
  void LoadDurableSnapshots();

  RespStoreOptions options_;
  // Protects map_ (single-threaded-store emulation).
  mutable Mutex mu_{LockRank::kStoreFlush, "respstore.map"};
  std::unordered_map<std::string, std::string> map_ GUARDED_BY(mu_);

  // Snapshot pipeline. save_mu_ is held across snap-log replay, so it ranks
  // above kStorage; it never nests with mu_ (BgSave serializes the image
  // under mu_, releases, then enqueues under save_mu_).
  WriteAheadLog snap_log_;
  mutable Mutex save_mu_{LockRank::kStoreCheckpoints, "respstore.save"};
  CondVar save_cv_;
  CondVar save_done_cv_;
  struct SaveJob {
    uint64_t token;
    std::string payload;  // serialized map image
  };
  std::deque<SaveJob> save_queue_ GUARDED_BY(save_mu_);
  bool save_in_progress_ GUARDED_BY(save_mu_) = false;
  bool stop_save_ GUARDED_BY(save_mu_) = false;
  std::thread save_thread_;
  // token -> log offset
  std::map<uint64_t, uint64_t> durable_snapshots_ GUARDED_BY(save_mu_);
};

}  // namespace dpr

#endif  // DPR_RESPSTORE_RESP_STORE_H_
