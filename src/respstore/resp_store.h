#ifndef DPR_RESPSTORE_RESP_STORE_H_
#define DPR_RESPSTORE_RESP_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"
#include "storage/wal.h"

namespace dpr {

/// Command set of the Redis stand-in. Commands are length-prefixed binary
/// (equivalent in role to RESP); batches are concatenations of commands.
enum class RespOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kDel = 3,
  kIncr = 4,      // 8-byte little-endian integer add
  kBgSave = 5,    // argument: version token; starts a background snapshot
  kLastSave = 6,  // returns the largest durable snapshot token
  kRestore = 7,   // argument: version; reload largest snapshot <= version
};

struct RespCommand {
  RespOp op;
  std::string key;
  std::string value;  // also carries the u64 argument for BGSAVE/RESTORE

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed);
};

struct RespReply {
  Status status;
  std::string value;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input, size_t* consumed);
};

struct RespStoreOptions {
  /// Device holding snapshot images (BGSAVE target).
  std::unique_ptr<Device> snapshot_device;
  /// When set, every write is appended to this append-only file and fsync'd
  /// before the command returns — Redis's appendfsync=always, used for the
  /// "synchronous recoverability" comparison (paper §7.6).
  std::unique_ptr<Device> aof_device;
  bool aof_enabled = false;
};

/// Unmodified-cache-store stand-in for Redis (paper §6): a single-threaded
/// in-memory hash map with BGSAVE-style background snapshots, LASTSAVE
/// polling, and restart-based restore. It knows nothing about DPR — the
/// D-Redis wrapper adds that from the outside via libDPR.
class RespStore {
 public:
  explicit RespStore(RespStoreOptions options);
  ~RespStore();

  RespStore(const RespStore&) = delete;
  RespStore& operator=(const RespStore&) = delete;

  /// Executes one command (serialized internally; Redis is single-threaded).
  RespReply Execute(const RespCommand& command);

  /// Executes an encoded command batch, appending encoded replies.
  Status ExecuteBatch(Slice batch, std::string* replies);

  /// Largest durable snapshot token (LASTSAVE).
  uint64_t LastSave() const;

  /// Drops all volatile state and unsynced storage, as a crash would;
  /// the caller restores via a kRestore command afterwards.
  void SimulateCrash();

  /// Blocks until no background save is running (test helper).
  void WaitForSave();

  uint64_t size() const;

 private:
  RespReply DoBgSave(uint64_t token);
  RespReply DoRestore(uint64_t version);
  void SaveLoop();
  Status AppendAof(const RespCommand& command);
  void LoadDurableSnapshots();

  RespStoreOptions options_;
  mutable std::mutex mu_;  // protects map_ (single-threaded-store emulation)
  std::unordered_map<std::string, std::string> map_;

  // Snapshot pipeline.
  WriteAheadLog snap_log_;
  mutable std::mutex save_mu_;
  std::condition_variable save_cv_;
  std::condition_variable save_done_cv_;
  struct SaveJob {
    uint64_t token;
    std::string payload;  // serialized map image
  };
  std::deque<SaveJob> save_queue_;
  bool save_in_progress_ = false;
  bool stop_save_ = false;
  std::thread save_thread_;
  std::map<uint64_t, uint64_t> durable_snapshots_;  // token -> log offset
};

}  // namespace dpr

#endif  // DPR_RESPSTORE_RESP_STORE_H_
