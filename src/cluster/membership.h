#ifndef DPR_CLUSTER_MEMBERSHIP_H_
#define DPR_CLUSTER_MEMBERSHIP_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

/// Membership state machine of the elastic cluster plane (DESIGN.md §4i).
/// The durable truth lives in the metadata service's member rows; this class
/// owns the *legal transition* relation and serializes check-then-set so two
/// concurrent transitions for one worker cannot interleave into an illegal
/// history:
///
///     (absent) ──> kJoining ──> kActive ──> kDraining ──> kRemoved
///                      │                                     ▲
///                      └──────────── (join aborted) ─────────┘
///
/// kRemoved is a tombstone: a decommissioned worker id never transitions out
/// of it, so stale ownership rows can always be attributed.
class ClusterMembership {
 public:
  explicit ClusterMembership(MetadataStore* metadata) : metadata_(metadata) {}

  /// True iff `from` -> `to` is an edge of the state machine above.
  /// `exists=false` models the (absent) start state; `from` is ignored then.
  static bool LegalTransition(bool exists, MemberState from, MemberState to);

  /// Atomically validates and durably records `worker` -> `to`. Returns
  /// InvalidArgument for an illegal edge (including re-joining a tombstone),
  /// and passes through metadata-log failures.
  Status Transition(WorkerId worker, MemberState to);

  /// Current durable state of `worker`; NotFound if it never joined.
  Status StateOf(WorkerId worker, MemberState* out) const;

  /// Snapshot of all member rows (including tombstones).
  std::map<WorkerId, MemberState> States() const;

  /// Workers currently in kActive, ascending by id — the set eligible to
  /// receive migrated shards and to appear in DPR cuts.
  std::vector<WorkerId> ActiveMembers() const;

 private:
  MetadataStore* const metadata_;
  // Serializes check-then-set against the metadata rows. Held across
  // MetadataStore calls (kMetadata = 70), hence the high kClusterMembers
  // rank; never nested with the ClusterManager mutex of the same rank.
  mutable Mutex mu_{LockRank::kClusterMembers, "cluster.membership"};
};

}  // namespace dpr

#endif  // DPR_CLUSTER_MEMBERSHIP_H_
