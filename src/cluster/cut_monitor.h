#ifndef DPR_CLUSTER_CUT_MONITOR_H_
#define DPR_CLUSTER_CUT_MONITOR_H_

#include "common/status.h"
#include "dpr/types.h"

namespace dpr {

/// Watches a stream of DPR cuts and proves per-worker monotonicity: once the
/// system has guaranteed version v of worker w recoverable, no later cut may
/// guarantee less — that would un-commit acknowledged operations. Elastic
/// membership makes this worth checking end-to-end: workers join and leave
/// between cuts, migrations entangle versions across workers, and a buggy
/// flip could drag the finder's min backwards.
///
/// A worker *absent* from a cut is fine (it left the cluster, or the finder
/// has no row yet); only a present-but-smaller entry is a violation.
///
/// Not thread-safe: the chaos runner and benches observe cuts from one
/// thread. Wrap in a lock if that changes.
class CutMonotonicityChecker {
 public:
  /// Folds one observed cut into the high-water map. Returns Corruption
  /// naming the offending worker on the first regression.
  Status Observe(const DprCut& cut);

  /// Largest version ever observed per worker.
  const DprCut& high_water() const { return high_water_; }

  /// Number of cuts observed so far.
  uint64_t observed() const { return observed_; }

 private:
  DprCut high_water_;
  uint64_t observed_ = 0;
};

}  // namespace dpr

#endif  // DPR_CLUSTER_CUT_MONITOR_H_
