#include "cluster/migration.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpr {

namespace {

struct MigrationMetrics {
  Counter* started;
  Counter* completed;
  Counter* aborted;
  ShardedHistogram* duration_us;
  ShardedHistogram* barrier_us;
};

const MigrationMetrics& Metrics() {
  static const MigrationMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return MigrationMetrics{r.counter("cluster.migration.started"),
                            r.counter("cluster.migration.completed"),
                            r.counter("cluster.migration.aborted"),
                            r.histogram("cluster.migration.duration_us"),
                            r.histogram("cluster.migration.barrier_us")};
  }();
  return m;
}

/// Barrier poll pacing when the caller supplied no pump (someone else is
/// driving commits, e.g. the workers' own checkpoint timers).
constexpr uint64_t kBarrierPollUs = 200;

}  // namespace

MigrationDriver::MigrationDriver(MigrationOptions options)
    : options_(std::move(options)) {
  if (options_.target != nullptr && options_.target_id == kInvalidWorker) {
    options_.target_id = options_.target->id();
  }
}

Status MigrationDriver::Run() {
  const MigrationMetrics& m = Metrics();
  if (options_.source == nullptr || options_.metadata == nullptr ||
      options_.channel == nullptr) {
    return Status::InvalidArgument("migration needs source+metadata+channel");
  }
  if (options_.target_id == kInvalidWorker) {
    return Status::InvalidArgument("migration target unknown");
  }
  if (options_.source->id() == options_.target_id) {
    return Status::InvalidArgument("migration source == target");
  }
  if (!options_.source->OwnsPartition(options_.partition)) {
    return Status::NotOwner("migration source does not own partition");
  }
  if (options_.target != nullptr &&
      options_.target->OwnsPartition(options_.partition)) {
    return Status::InvalidArgument("migration target already owns partition");
  }

  m.started->Add(1);
  Stopwatch total;

  const WorldLine src_wl0 = options_.source->dpr_worker() != nullptr
                                ? options_.source->dpr_worker()->world_line()
                                : kInitialWorldLine;
  const WorldLine dst_wl0 =
      options_.target != nullptr && options_.target->dpr_worker() != nullptr
          ? options_.target->dpr_worker()->world_line()
          : kInitialWorldLine;

  // Phase 1: durable in-flight record, before any state changes hands.
  Status s = options_.metadata->SetMigration(
      options_.partition, options_.source->id(), options_.target_id);
  if (!s.ok()) {
    m.aborted->Add(1);
    return s;
  }

  // Phase 2: open the dual-ownership window.
  s = options_.source->SealPartition(options_.partition, options_.channel);
  if (!s.ok()) {
    (void)options_.metadata->ClearMigration(options_.partition);
    m.aborted->Add(1);
    return s;
  }

  // Phases 3-5 (drain, barrier, fence) run with the window open; any failure
  // aborts by closing the window without disowning — the source never
  // stopped being authoritative, so this is always safe.
  s = RunSealed(src_wl0, dst_wl0);
  if (!s.ok()) {
    DPR_WARN("migration of partition %u %u->%u aborted: %s",
             options_.partition, options_.source->id(), options_.target_id,
             s.ToString().c_str());
    options_.source->UnsealPartition(options_.partition, /*disown=*/false);
    (void)options_.metadata->ClearMigration(options_.partition);
    m.aborted->Add(1);
    return s;
  }

  // Phase 6: flip. Durable ownership first, then the target starts serving,
  // then the source stops — a crash between these steps leaves at most a
  // dual-ownership window, never an ownerless partition.
  s = options_.metadata->SetOwner(options_.partition, options_.target_id);
  if (!s.ok()) {
    options_.source->UnsealPartition(options_.partition, /*disown=*/false);
    (void)options_.metadata->ClearMigration(options_.partition);
    m.aborted->Add(1);
    return s;
  }
  if (options_.target != nullptr) {
    options_.target->AdoptPartition(options_.partition);
  }
  options_.source->UnsealPartition(options_.partition, /*disown=*/true);

  // Phase 7: release the in-flight record.
  Status release = options_.metadata->ClearMigration(options_.partition);
  m.completed->Add(1);
  m.duration_us->Record(total.ElapsedMicros());
  return release;
}

Status MigrationDriver::RunSealed(WorldLine source_wl0, WorldLine target_wl0) {
  Version max_installed = kInvalidVersion;
  DPR_RETURN_NOT_OK(options_.source->DrainSealedPartition(
      options_.partition, options_.drain_chunk_ops, &max_installed));
  if (AbortRequested()) return Status::Aborted("migration abort requested");

  DPR_RETURN_NOT_OK(CommitBarrier(max_installed));

  // Fence: if either side shifted world-lines since the seal, the install
  // history straddles a rollback and the target copy cannot be trusted.
  // Same for any failed forward. Checked *after* the barrier so nothing that
  // happened during the (possibly long) cut wait escapes the check.
  if (options_.source->SealForwardFailed(options_.partition)) {
    return Status::Unavailable("a forwarded write failed during migration");
  }
  if (options_.source->dpr_worker() != nullptr &&
      options_.source->dpr_worker()->world_line() != source_wl0) {
    return Status::Aborted("source world-line shifted during migration");
  }
  if (options_.target != nullptr && options_.target->dpr_worker() != nullptr &&
      options_.target->dpr_worker()->world_line() != target_wl0) {
    return Status::Aborted("target world-line shifted during migration");
  }
  if (AbortRequested()) return Status::Aborted("migration abort requested");
  return Status::OK();
}

Status MigrationDriver::CommitBarrier(Version max_installed) {
  // Nothing was installed (empty partition, no concurrent writes) or no DPR
  // deployment: there is no recoverability guarantee to wait for.
  if (!options_.get_cut || max_installed == kInvalidVersion) {
    return Status::OK();
  }
  Stopwatch waited;
  for (;;) {
    DprCut cut;
    DPR_RETURN_NOT_OK(options_.get_cut(&cut));
    if (CutVersion(cut, options_.target_id) >= max_installed) {
      Metrics().barrier_us->Record(waited.ElapsedMicros());
      return Status::OK();
    }
    if (AbortRequested()) return Status::Aborted("migration abort requested");
    if (waited.ElapsedMicros() > options_.barrier_timeout_us) {
      return Status::TimedOut("migration commit barrier: cut never covered "
                              "the installed versions");
    }
    if (options_.pump) {
      options_.pump();
    } else {
      SleepMicros(kBarrierPollUs);
    }
  }
}

}  // namespace dpr
