#include "cluster/cut_monitor.h"

#include <string>

namespace dpr {

Status CutMonotonicityChecker::Observe(const DprCut& cut) {
  ++observed_;
  for (const auto& [worker, version] : cut) {
    auto [it, inserted] = high_water_.emplace(worker, version);
    if (inserted) continue;
    if (version < it->second) {
      std::string msg = "P5 cut regression: worker ";
      msg += std::to_string(worker);
      msg += " guaranteed v";
      msg += std::to_string(it->second);
      msg += " but a later cut reports v";
      msg += std::to_string(version);
      return Status::Corruption(msg);
    }
    it->second = version;
  }
  return Status::OK();
}

}  // namespace dpr
