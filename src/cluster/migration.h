#ifndef DPR_CLUSTER_MIGRATION_H_
#define DPR_CLUSTER_MIGRATION_H_

#include <atomic>
#include <functional>
#include <memory>

#include "common/status.h"
#include "dfaster/migration_channel.h"
#include "dfaster/worker.h"
#include "dpr/types.h"
#include "metadata/metadata_store.h"

namespace dpr {

struct MigrationOptions {
  /// Virtual partition being moved.
  uint32_t partition = 0;
  /// Current owner; must be in-process (the driver calls its seal/drain API
  /// directly). Remote sources would need a thin RPC wrapper — not needed
  /// yet, the harness drives migrations from the process hosting the source.
  DFasterWorker* source = nullptr;
  /// Migration target. May be null when the target is remote; then
  /// `target_id` must be set and the adopt step is the caller's job (the
  /// harness always has an in-process handle, so in practice it is non-null).
  DFasterWorker* target = nullptr;
  /// Target worker id; defaults to target->id() when target is set.
  WorkerId target_id = kInvalidWorker;
  /// Install path from source to target (local rendezvous or RPC).
  std::shared_ptr<MigrationChannel> channel;
  /// Durable membership/ownership/migration rows.
  MetadataStore* metadata = nullptr;
  /// Returns the latest committed DPR cut. Unset => non-DPR deployment; the
  /// commit barrier is skipped (eventual/none modes have no recoverability
  /// guarantee to preserve).
  std::function<Status(DprCut*)> get_cut;
  /// Advances the commit machinery one step (e.g. TryCommit + finder
  /// ComputeCut + RefreshPersistedWatermark). Called between barrier polls.
  std::function<void()> pump;
  /// Upserts per drain install batch.
  size_t drain_chunk_ops = 64;
  /// Commit-barrier give-up horizon.
  uint64_t barrier_timeout_us = 10'000'000;
};

/// Drives one live shard migration through its phases (DESIGN.md §4i):
///
///   1. record   — durable MigrationRow, so a crashed driver is visible;
///   2. seal     — source opens the dual-ownership window (checkpoint
///                 boundary, then every new write double-applies: locally
///                 and forwarded through the channel);
///   3. drain    — bulk-install the pre-existing records in chunks;
///   4. barrier  — pump DPR until the cut covers the largest version any
///                 install executed in at the target, so the migrated data
///                 is inside the guarantee before anyone depends on the
///                 target owning it;
///   5. fence    — verify neither side shifted world-lines since the seal
///                 and no forward failed (else the target copy is garbage);
///   6. flip     — metadata SetOwner, target adopts, source unseals with
///                 disown (under the seal lock: no straggler op can apply
///                 locally-but-unforwarded after the target took over);
///   7. release  — clear the MigrationRow.
///
/// Any failure before the flip aborts: the source unseals without disowning
/// and keeps serving; the target simply holds duplicate records it does not
/// own (they are unreachable: clients route by the ownership map).
///
/// Cut monotonicity argument: installs run under DPR admission with the
/// source's {version, deps} header, so the target fast-forwards and records
/// a dependency — the cut cannot cover the target's adopted state without
/// covering the source history it came from. A recovery between seal and
/// flip rolls both sides back together (same world-line shift) and the
/// fence aborts the migration; hence no cut entry ever regresses because of
/// a migration (checked end-to-end by the chaos harness's P5 checker).
class MigrationDriver {
 public:
  explicit MigrationDriver(MigrationOptions options);

  /// Executes the full phase sequence. Not reusable; one driver per attempt.
  Status Run();

  /// Requests an abort at the next phase boundary; safe from any thread
  /// (e.g. a ClusterManager recovery listener). A migration already past
  /// the fence completes normally.
  void RequestAbort() { abort_requested_.store(true, std::memory_order_relaxed); }

 private:
  Status RunSealed(WorldLine source_wl0, WorldLine target_wl0);
  Status CommitBarrier(Version max_installed);
  bool AbortRequested() const {
    return abort_requested_.load(std::memory_order_relaxed);
  }

  MigrationOptions options_;
  // relaxed: a lone abort flag polled at phase boundaries; no other data is
  // published through it (the phases fence their own state).
  std::atomic<bool> abort_requested_{false};
};

}  // namespace dpr

#endif  // DPR_CLUSTER_MIGRATION_H_
