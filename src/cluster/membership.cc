#include "cluster/membership.h"

#include <string>

namespace dpr {

bool ClusterMembership::LegalTransition(bool exists, MemberState from,
                                        MemberState to) {
  if (!exists) return to == MemberState::kJoining;
  switch (from) {
    case MemberState::kJoining:
      return to == MemberState::kActive || to == MemberState::kRemoved;
    case MemberState::kActive:
      return to == MemberState::kDraining;
    case MemberState::kDraining:
      return to == MemberState::kRemoved;
    case MemberState::kRemoved:
      return false;  // tombstone
  }
  return false;
}

Status ClusterMembership::Transition(WorkerId worker, MemberState to) {
  MutexLock lock(mu_);
  std::map<WorkerId, MemberState> states = metadata_->GetMemberStates();
  auto it = states.find(worker);
  const bool exists = it != states.end();
  const MemberState from = exists ? it->second : MemberState::kJoining;
  if (!LegalTransition(exists, from, to)) {
    std::string msg = "illegal membership transition for worker ";
    msg += std::to_string(worker);
    msg += ": ";
    msg += exists ? MemberStateName(from) : "(absent)";
    msg += " -> ";
    msg += MemberStateName(to);
    return Status::InvalidArgument(msg);
  }
  return metadata_->SetMemberState(worker, to);
}

Status ClusterMembership::StateOf(WorkerId worker, MemberState* out) const {
  MutexLock lock(mu_);
  std::map<WorkerId, MemberState> states = metadata_->GetMemberStates();
  auto it = states.find(worker);
  if (it == states.end()) return Status::NotFound("worker never joined");
  if (out != nullptr) *out = it->second;
  return Status::OK();
}

std::map<WorkerId, MemberState> ClusterMembership::States() const {
  MutexLock lock(mu_);
  return metadata_->GetMemberStates();
}

std::vector<WorkerId> ClusterMembership::ActiveMembers() const {
  MutexLock lock(mu_);
  std::vector<WorkerId> active;
  for (const auto& [worker, state] : metadata_->GetMemberStates()) {
    if (state == MemberState::kActive) active.push_back(worker);
  }
  return active;
}

}  // namespace dpr
