#include "epoch/light_epoch.h"

#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dpr {

namespace {

// relaxed: thread-id allocator, uniqueness only — no ordering duty.
std::atomic<uint64_t> g_thread_counter{1};

uint64_t ThisThreadId() {
  static thread_local uint64_t id =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread slot assignment. Most threads touch one epoch instance, so a
// one-entry cache fronts a map for the multi-store (multi-worker) case.
struct SlotCache {
  const void* last_instance = nullptr;
  uint32_t last_slot = 0;
  std::unordered_map<const void*, uint32_t> slots;
};

SlotCache& GetSlotCache() {
  static thread_local SlotCache cache;
  return cache;
}

constexpr uint32_t kNoSlot = ~0u;

uint32_t LookupSlot(const void* instance) {
  SlotCache& cache = GetSlotCache();
  if (cache.last_instance == instance) return cache.last_slot;
  auto it = cache.slots.find(instance);
  if (it == cache.slots.end()) return kNoSlot;
  cache.last_instance = instance;
  cache.last_slot = it->second;
  return it->second;
}

void RememberSlot(const void* instance, uint32_t slot) {
  SlotCache& cache = GetSlotCache();
  cache.slots[instance] = slot;
  cache.last_instance = instance;
  cache.last_slot = slot;
}

void ForgetSlot(const void* instance) {
  SlotCache& cache = GetSlotCache();
  cache.slots.erase(instance);
  if (cache.last_instance == instance) cache.last_instance = nullptr;
}

}  // namespace

LightEpoch::LightEpoch() : current_epoch_(1), drain_count_(0) {
  for (auto& item : drain_list_) {
    item.epoch = 0;
  }
}

LightEpoch::~LightEpoch() {
  // Run any leftover actions so resources they own are not leaked.
  DoDrain(~0ULL);
}

uint64_t LightEpoch::Protect() {
  uint32_t slot = LookupSlot(this);
  if (slot == kNoSlot) {
    const uint64_t tid = ThisThreadId();
    for (;;) {
      for (uint32_t i = 0; i < kMaxThreads; ++i) {
        uint64_t expected = 0;
        if (table_[i].thread_id.compare_exchange_strong(
                expected, tid, std::memory_order_acq_rel)) {
          slot = i;
          break;
        }
      }
      if (slot != kNoSlot) break;
      std::this_thread::yield();  // table full; wait for a slot to free up
    }
    RememberSlot(this, slot);
  }
  const uint64_t epoch = current_epoch_.load(std::memory_order_acquire);
  table_[slot].local_epoch.store(epoch, std::memory_order_release);
  if (drain_count_.load(std::memory_order_acquire) > 0) {
    DoDrain(ComputeSafeEpoch());
  }
  return epoch;
}

uint64_t LightEpoch::Refresh() {
  const uint32_t slot = LookupSlot(this);
  DPR_CHECK_MSG(slot != kNoSlot, "Refresh() on unprotected thread");
  const uint64_t epoch = current_epoch_.load(std::memory_order_acquire);
  table_[slot].local_epoch.store(epoch, std::memory_order_release);
  if (drain_count_.load(std::memory_order_acquire) > 0) {
    DoDrain(ComputeSafeEpoch());
  }
  return epoch;
}

void LightEpoch::Unprotect() {
  const uint32_t slot = LookupSlot(this);
  if (slot == kNoSlot) return;
  table_[slot].local_epoch.store(kUnprotected, std::memory_order_release);
  table_[slot].thread_id.store(0, std::memory_order_release);
  ForgetSlot(this);
}

bool LightEpoch::IsProtected() const {
  const uint32_t slot = LookupSlot(this);
  if (slot == kNoSlot) return false;
  return table_[slot].local_epoch.load(std::memory_order_acquire) !=
         kUnprotected;
}

uint64_t LightEpoch::ComputeSafeEpoch() const {
  uint64_t safe = current_epoch_.load(std::memory_order_acquire);
  for (const auto& entry : table_) {
    const uint64_t local = entry.local_epoch.load(std::memory_order_acquire);
    if (local != kUnprotected && local < safe) safe = local;
  }
  return safe;
}

uint64_t LightEpoch::BumpEpoch() {
  return current_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

uint64_t LightEpoch::BumpEpoch(std::function<void()> action) {
  // The action is safe once every protected thread has seen an epoch >= the
  // post-bump value, i.e. safe-epoch >= prior+1.
  drain_latch_.Lock();
  int idx = -1;
  for (int i = 0; i < kDrainListSize; ++i) {
    if (!drain_list_[i].action) {
      idx = i;
      break;
    }
  }
  DPR_CHECK_MSG(idx >= 0, "epoch drain list full");
  const uint64_t next = BumpEpoch();
  drain_list_[idx].epoch = next;
  drain_list_[idx].action = std::move(action);
  drain_count_.fetch_add(1, std::memory_order_release);
  drain_latch_.Unlock();
  TryDrain();
  return next;
}

void LightEpoch::TryDrain() {
  if (drain_count_.load(std::memory_order_acquire) == 0) return;
  DoDrain(ComputeSafeEpoch());
}

void LightEpoch::DoDrain(uint64_t safe_epoch) {
  if (drain_count_.load(std::memory_order_acquire) == 0) return;
  std::vector<std::function<void()>> ready;
  drain_latch_.Lock();
  for (auto& item : drain_list_) {
    if (item.action && item.epoch <= safe_epoch) {
      ready.push_back(std::move(item.action));
      item.action = nullptr;
      drain_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  drain_latch_.Unlock();
  for (auto& action : ready) action();
}

}  // namespace dpr
