#ifndef DPR_EPOCH_LIGHT_EPOCH_H_
#define DPR_EPOCH_LIGHT_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/latch.h"

namespace dpr {

/// Epoch protection framework in the style of FASTER's LightEpoch.
///
/// Threads entering the store call Protect() to publish the epoch they are
/// operating in and Unprotect() when leaving (or Refresh() periodically while
/// staying in). BumpEpoch(action) advances the global epoch and registers a
/// drain action that runs once every protected thread has observed an epoch
/// greater than or equal to the bumped one — i.e. once no thread can still be
/// executing code that predates the bump. This is the building block for
/// non-blocking checkpoints and rollbacks: global state transitions become
/// visible lazily, and completion is detected without locks.
class LightEpoch {
 public:
  static constexpr uint32_t kMaxThreads = 128;
  static constexpr uint64_t kUnprotected = 0;

  LightEpoch();
  ~LightEpoch();

  LightEpoch(const LightEpoch&) = delete;
  LightEpoch& operator=(const LightEpoch&) = delete;

  /// Acquires a slot for the calling thread (idempotent) and publishes the
  /// current epoch. Returns the epoch observed.
  uint64_t Protect();

  /// Re-publishes the current epoch for the calling thread and runs any drain
  /// actions that have become safe. Must be called from a protected thread.
  uint64_t Refresh();

  /// Clears the calling thread's published epoch.
  void Unprotect();

  /// Returns true if the calling thread currently holds a protected slot.
  bool IsProtected() const;

  /// Atomically increments the current epoch; `action` runs exactly once,
  /// on some thread inside Refresh()/Protect()/Drain, after every protected
  /// thread has moved past the pre-bump epoch.
  uint64_t BumpEpoch(std::function<void()> action);

  /// Bump without an action.
  uint64_t BumpEpoch();

  /// Current global epoch.
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  /// Largest epoch E such that no protected thread is still publishing an
  /// epoch < E. All actions registered at epochs <= safe can run.
  uint64_t ComputeSafeEpoch() const;

  /// Runs ripe drain actions from any thread (e.g. a background timer).
  void TryDrain();

 private:
  struct alignas(64) Entry {
    // release on publish / acquire on scan: a drainer that reads slot epoch
    // e must also observe every access the owning thread made before
    // entering e (the classic epoch-protection contract).
    std::atomic<uint64_t> local_epoch{kUnprotected};
    // CAS-claimed at slot acquisition (uniqueness only — no ordering duty).
    std::atomic<uint64_t> thread_id{0};
  };

  struct DrainItem {
    uint64_t epoch;                // action safe once safe-epoch >= this
    std::function<void()> action;  // empty slot when !action
  };

  static constexpr int kDrainListSize = 256;

  void DoDrain(uint64_t safe_epoch);

  Entry table_[kMaxThreads];
  // acquire/release pairs with local_epoch above; drain_count_ is an
  // acquire-read fast path that skips the drain scan when zero.
  std::atomic<uint64_t> current_epoch_;
  std::atomic<int> drain_count_;
  DrainItem drain_list_[kDrainListSize];
  SpinLatch drain_latch_;
};

}  // namespace dpr

#endif  // DPR_EPOCH_LIGHT_EPOCH_H_
