// Quickstart: bring up a two-shard D-FASTER cluster in-process, write and
// read through a client session, observe asynchronous commit, and survive an
// injected failure with prefix recovery.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "harness/cluster.h"

using namespace dpr;  // NOLINT — example brevity

int main() {
  // 1. A cluster: two workers, each a FASTER shard + DPR worker, with the
  //    metadata store, DPR finder, and cluster manager wired up. Checkpoints
  //    ("commits") fire every 50 ms.
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 50000;
  DFasterCluster cluster(options);
  Status s = cluster.Start();
  if (!s.ok()) {
    fprintf(stderr, "cluster start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. A client session. Operations complete at memory speed; commits are
  //    reported asynchronously as prefixes of the session.
  auto client = cluster.NewClient(/*batch_size=*/8, /*window=*/64);
  auto session = client->NewSession(/*session_id=*/1);

  for (uint64_t k = 0; k < 100; ++k) {
    session->Upsert(k, k * k);
  }
  s = session->WaitForAll();
  printf("100 upserts completed (%s) — visible to all clients, commit "
         "pending\n",
         s.ToString().c_str());

  // 3. Completion != commit: wait for the DPR guarantee when you need the
  //    traditional durable-store behaviour.
  s = session->WaitForCommit();
  const auto point = session->dpr().GetCommitPoint();
  printf("commit point: %llu ops durable (%s)\n",
         static_cast<unsigned long long>(point.prefix_end),
         s.ToString().c_str());

  // 4. Reads are fast-path; values are served from the cache tier.
  session->Read(7, [](KvResult r, uint64_t v) {
    printf("read key 7 -> %llu (%s)\n", static_cast<unsigned long long>(v),
           r == KvResult::kOk ? "ok" : "miss");
  });
  (void)session->WaitForAll();

  // 5. Failure: worker 0 crashes and restarts; everyone rolls back to the
  //    last DPR cut. Committed data survives by construction.
  printf("injecting failure of worker 0...\n");
  (void)cluster.InjectFailure({0});
  session->Read(7, nullptr);  // the next interaction reveals the failure
  (void)session->WaitForAll();
  if (session->needs_failure_handling()) {
    DprSession::CommitPoint survivors;
    (void)session->RecoverFromFailure(&survivors);
    printf("recovered onto world-line %llu; surviving prefix: %llu ops, "
           "%zu lost\n",
           static_cast<unsigned long long>(session->dpr().world_line()),
           static_cast<unsigned long long>(survivors.prefix_end),
           survivors.excluded.size());
  }

  // 6. Business as usual on the new world-line.
  session->Read(7, [](KvResult r, uint64_t v) {
    printf("after recovery, key 7 -> %llu (%s)\n",
           static_cast<unsigned long long>(v),
           r == KvResult::kOk ? "ok" : "miss");
  });
  (void)session->WaitForAll();
  printf("quickstart done\n");
  return 0;
}
