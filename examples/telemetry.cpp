// Cloud-telemetry pipeline (paper §1, Example 1): devices insert telemetry
// into the distributed cache-store; an aggregation service continuously
// reads *uncommitted* data and writes back per-key aggregates; a feed
// service serves tentative results immediately and committed views lazily.
//
// The DPR guarantee demonstrated here: because the aggregator's writes are
// issued on a session that read the raw points, the aggregate can never
// commit unless the contributing data commits too — no coordination, just
// session dependencies.
//
// Build & run:  ./build/examples/telemetry
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "common/random.h"
#include "harness/cluster.h"

using namespace dpr;  // NOLINT — example brevity

namespace {

constexpr uint64_t kDevices = 16;
constexpr uint64_t kSamplesPerDevice = 200;
// Key layout: [device d, sample i] -> key d*1000+i ; aggregate(d) -> 900000+d.
uint64_t SampleKey(uint64_t device, uint64_t i) { return device * 1000 + i; }
uint64_t AggregateKey(uint64_t device) { return 900000 + device; }

}  // namespace

int main() {
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kLocal;
  options.checkpoint_interval_us = 50000;
  DFasterCluster cluster(options);
  if (!cluster.Start().ok()) return 1;

  std::atomic<bool> ingest_done{false};

  // --- Ingest service: devices streaming telemetry, one session.
  std::thread ingest([&] {
    auto client = cluster.NewClient(16, 256);
    auto session = client->NewSession(100);
    Random rng(1);
    for (uint64_t i = 0; i < kSamplesPerDevice; ++i) {
      for (uint64_t d = 0; d < kDevices; ++d) {
        session->Upsert(SampleKey(d, i), rng.Uniform(100));  // a reading
      }
    }
    (void)session->WaitForAll();
    ingest_done.store(true);
    printf("[ingest]     %llu telemetry points completed (commit pending)\n",
           static_cast<unsigned long long>(kDevices * kSamplesPerDevice));
  });

  // --- Aggregation service: reads raw (possibly uncommitted) points and
  //     writes running sums back. Same session => aggregates depend on data.
  std::thread aggregator([&] {
    auto client = cluster.NewClient(16, 256);
    auto session = client->NewSession(200);
    while (!ingest_done.load()) SleepMicros(1000);
    for (uint64_t d = 0; d < kDevices; ++d) {
      std::atomic<uint64_t> sum{0};
      for (uint64_t i = 0; i < kSamplesPerDevice; ++i) {
        session->Read(SampleKey(d, i), [&](KvResult r, uint64_t v) {
          if (r == KvResult::kOk) sum.fetch_add(v);
        });
      }
      (void)session->WaitForAll();  // reads before write: real dependency
      session->Upsert(AggregateKey(d), sum.load());
    }
    (void)session->WaitForAll();
    printf("[aggregator] per-device aggregates written using uncommitted "
           "reads\n");

    // The aggregate commits only as part of a prefix that includes its
    // inputs: wait for the DPR guarantee before publishing externally.
    Status s = session->WaitForCommit();
    printf("[aggregator] aggregates committed (%s) — safe to expose\n",
           s.ToString().c_str());
  });

  ingest.join();
  aggregator.join();

  // --- Feed service: immediately serves tentative values; the committed
  //     view follows lazily.
  auto client = cluster.NewClient(8, 64);
  auto session = client->NewSession(300);
  printf("[feed]       tentative dashboard:\n");
  for (uint64_t d = 0; d < 4; ++d) {
    session->Read(AggregateKey(d), [d](KvResult r, uint64_t v) {
      printf("             device %llu total=%llu (%s)\n",
             static_cast<unsigned long long>(d),
             static_cast<unsigned long long>(v),
             r == KvResult::kOk ? "ok" : "pending");
    });
  }
  (void)session->WaitForAll();
  printf("telemetry example done\n");
  return 0;
}
