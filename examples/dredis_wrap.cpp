// Wrapping an *unmodified* cache-store with libDPR (paper §6): the store —
// here the bundled Redis stand-in — knows nothing about DPR; the proxy adds
// prefix recoverability by intercepting request batches, triggering BGSAVE
// on the store's existing group-commit interface, and polling LASTSAVE.
//
// Build & run:  ./build/examples/dredis_wrap
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "harness/cluster.h"

using namespace dpr;  // NOLINT — example brevity

int main() {
  RedisClusterOptions options;
  options.num_shards = 2;
  options.deployment = RedisDeployment::kDpr;
  options.checkpoint_interval_us = 50000;
  DRedisCluster cluster(options);
  if (!cluster.Start().ok()) return 1;

  auto client = cluster.NewClient(/*batch=*/8, /*window=*/64);
  auto session = client->NewSession(1);

  for (uint64_t k = 0; k < 100; ++k) {
    session->Set(k, k + 1000);
  }
  (void)session->WaitForAll();
  printf("100 SETs completed against the unmodified store\n");

  // Commit progress arrives via piggybacked watermarks; touch each shard to
  // learn them, then report the committed prefix.
  const uint64_t target = session->dpr().next_seqno();
  const Stopwatch timer;
  while (timer.ElapsedMillis() < 10000) {
    const auto point = session->dpr().GetCommitPoint();
    if (point.prefix_end >= target && point.excluded.empty()) break;
    for (uint32_t shard = 0; shard < 2; ++shard) {
      uint64_t key = 0;
      while (DRedisClient::ShardOf(key, 2) != shard) key++;
      session->Get(key, nullptr);
    }
    (void)session->WaitForAll();
    SleepMicros(5000);
  }
  printf("committed prefix: %llu / %llu ops (via BGSAVE snapshots: "
         "shard0 token %llu, shard1 token %llu)\n",
         static_cast<unsigned long long>(
             session->dpr().GetCommitPoint().prefix_end),
         static_cast<unsigned long long>(target),
         static_cast<unsigned long long>(cluster.store(0)->LastSave()),
         static_cast<unsigned long long>(cluster.store(1)->LastSave()));

  session->Get(42, [](Status s, Slice value) {
    uint64_t v = 0;
    if (s.ok() && value.size() == 8) memcpy(&v, value.data(), 8);
    printf("GET 42 -> %llu (%s)\n", static_cast<unsigned long long>(v),
           s.ToString().c_str());
  });
  (void)session->WaitForAll();
  printf("dredis_wrap done\n");
  return 0;
}
