// Multi-process D-FASTER on one box (the paper's deployment shape, scaled to
// processes instead of VMs): a coordinator process runs the metadata store +
// DPR finder behind a TCP service; each worker process runs a FASTER shard
// with a remote finder stub; the client talks to the workers over TCP and
// waits for a cross-process DPR commit.
//
//   ./build/examples/multiprocess                 # forks the whole topology
//   ./build/examples/multiprocess --role=coordinator --port=23450
//   ./build/examples/multiprocess --role=worker --id=0 --workers=2
//       [--finder=127.0.0.1:23450 --port=23451]
//   ./build/examples/multiprocess --role=client --workers=2
//       [--worker0=127.0.0.1:23451 --worker1=127.0.0.1:23452]
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>

#include "common/clock.h"
#include "common/flags.h"
#include "dpr/finder_service.h"
#include "harness/cluster.h"

using namespace dpr;  // NOLINT — example brevity

namespace {

int RunCoordinator(uint16_t port) {
  MetadataStore metadata(std::make_unique<MemoryDevice>());
  if (!metadata.Recover().ok()) return 1;
  auto finder =
      MakeDprFinder({.kind = FinderKind::kApprox, .metadata = &metadata});
  DprFinderServer server(finder.get(), MakeTcpServer(port));
  if (!server.Start().ok()) return 1;
  finder->StartCoordinator(10000);
  fprintf(stderr, "[coordinator] serving DPR finder on %s\n",
          server.address().c_str());
  for (;;) SleepMillis(1000);  // killed by the parent
}

int RunWorker(WorkerId id, uint32_t num_workers, const std::string& finder,
              uint16_t port) {
  std::unique_ptr<RpcConnection> conn;
  // The coordinator may still be starting; retry the connect briefly.
  for (int attempt = 0;; ++attempt) {
    if (ConnectTcp(finder, &conn).ok()) break;
    if (attempt > 100) return 1;
    SleepMillis(20);
  }
  RemoteDprFinder remote_finder(std::move(conn));
  DFasterWorkerConfig config;
  config.id = id;
  config.num_workers = num_workers;
  config.dpr.finder = &remote_finder;
  config.dpr.checkpoint_interval_us = 50000;
  DFasterWorker worker(std::move(config));
  if (!worker.Start(MakeTcpServer(port)).ok()) return 1;
  fprintf(stderr, "[worker %u] serving on %s (pid %d)\n", id,
          worker.address().c_str(), getpid());
  for (;;) SleepMillis(1000);
}

int RunClient(const Flags& flags, uint32_t num_workers) {
  DFasterClientConfig config;
  config.num_workers = num_workers;
  config.batch_size = 8;
  config.window = 64;
  DFasterClient client(config);
  for (uint32_t i = 0; i < num_workers; ++i) {
    const std::string addr =
        flags.GetString("worker" + std::to_string(i), "");
    std::unique_ptr<RpcConnection> conn;
    for (int attempt = 0;; ++attempt) {
      if (ConnectTcp(addr, &conn).ok()) break;
      if (attempt > 100) return 1;
      SleepMillis(20);
    }
    client.AddRemoteWorker(i, std::move(conn));
  }
  auto session = client.NewSession(getpid());
  for (uint64_t k = 0; k < 100; ++k) session->Upsert(k, k * 11);
  Status s = session->WaitForAll();
  printf("[client] 100 cross-process upserts completed: %s\n",
         s.ToString().c_str());
  s = session->WaitForCommit(20000);
  printf("[client] DPR commit across processes: %s (prefix %llu)\n",
         s.ToString().c_str(),
         static_cast<unsigned long long>(
             session->dpr().GetCommitPoint().prefix_end));
  uint64_t sum = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    session->Read(k, [&](KvResult r, uint64_t v) {
      if (r == KvResult::kOk) sum += v;  // resolved before WaitForAll returns
    });
  }
  (void)session->WaitForAll();
  printf("[client] readback checksum %llu (expected %llu)\n",
         static_cast<unsigned long long>(sum),
         static_cast<unsigned long long>(11 * 99 * 100 / 2));
  return s.ok() && sum == 11ull * 99 * 100 / 2 ? 0 : 1;
}

int RunDemo(const Flags& flags) {
  const auto base = static_cast<uint16_t>(flags.GetInt("base_port", 23450));
  constexpr uint32_t kWorkers = 2;
  std::vector<pid_t> children;

  pid_t pid = fork();
  if (pid == 0) _exit(RunCoordinator(base));
  children.push_back(pid);

  for (uint32_t i = 0; i < kWorkers; ++i) {
    pid = fork();
    if (pid == 0) {
      _exit(RunWorker(i, kWorkers, "127.0.0.1:" + std::to_string(base),
                      static_cast<uint16_t>(base + 1 + i)));
    }
    children.push_back(pid);
  }

  // Parent acts as the client.
  const char* argv_like[] = {"demo"};
  Flags client_flags(1, const_cast<char**>(argv_like));
  (void)client_flags;
  DFasterClientConfig config;
  config.num_workers = kWorkers;
  config.batch_size = 8;
  config.window = 64;
  DFasterClient client(config);
  bool connected = true;
  for (uint32_t i = 0; i < kWorkers; ++i) {
    std::unique_ptr<RpcConnection> conn;
    bool ok = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (ConnectTcp("127.0.0.1:" + std::to_string(base + 1 + i), &conn)
              .ok()) {
        ok = true;
        break;
      }
      SleepMillis(20);
    }
    if (!ok) {
      connected = false;
      break;
    }
    client.AddRemoteWorker(i, std::move(conn));
  }

  int rc = 1;
  if (connected) {
    auto session = client.NewSession(1);
    for (uint64_t k = 0; k < 100; ++k) session->Upsert(k, k * 11);
    Status s = session->WaitForAll();
    printf("[client] upserts across %u worker processes: %s\n", kWorkers,
           s.ToString().c_str());
    s = session->WaitForCommit(20000);
    printf("[client] commit (coordinated by the finder process): %s\n",
           s.ToString().c_str());
    uint64_t sum = 0;
    for (uint64_t k = 0; k < 100; ++k) {
      session->Read(k, [&](KvResult r, uint64_t v) {
        if (r == KvResult::kOk) sum += v;
      });
    }
    (void)session->WaitForAll();
    rc = (s.ok() && sum == 11ull * 99 * 100 / 2) ? 0 : 1;
    printf("[client] readback %s\n", rc == 0 ? "verified" : "MISMATCH");
  } else {
    printf("[client] failed to connect to worker processes\n");
  }

  for (pid_t child : children) kill(child, SIGKILL);
  for (pid_t child : children) waitpid(child, nullptr, 0);
  printf("multiprocess demo done (rc=%d)\n", rc);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string role = flags.GetString("role", "demo");
  const auto num_workers =
      static_cast<uint32_t>(flags.GetInt("workers", 2));
  if (role == "coordinator") {
    return RunCoordinator(static_cast<uint16_t>(flags.GetInt("port", 23450)));
  }
  if (role == "worker") {
    return RunWorker(static_cast<WorkerId>(flags.GetInt("id", 0)),
                     num_workers, flags.GetString("finder", ""),
                     static_cast<uint16_t>(flags.GetInt("port", 23451)));
  }
  if (role == "client") {
    return RunClient(flags, num_workers);
  }
  return RunDemo(flags);
}
