// Serverless workflow (paper §1, Example 2): a chain of operators passes
// state through the cache-store. With a synchronous-durability store, every
// hand-off waits for a commit; with DPR, downstream operators consume
// upstream outputs *before* they commit, and the workflow exposes results
// only once the whole chain's prefix is durable.
//
// Build & run:  ./build/examples/serverless_workflow
#include <cstdio>

#include "common/clock.h"
#include "harness/cluster.h"

using namespace dpr;  // NOLINT — example brevity

namespace {

// Mailbox slots: stage s writes its output for item i at key s*100000 + i.
uint64_t Slot(uint64_t stage, uint64_t item) { return stage * 100000 + item; }
constexpr uint64_t kStages = 4;
constexpr uint64_t kItems = 64;

}  // namespace

int main() {
  ClusterOptions options;
  options.num_workers = 2;
  options.backend = StorageBackend::kCloud;  // high-latency durable tier
  options.checkpoint_interval_us = 100000;
  DFasterCluster cluster(options);
  if (!cluster.Start().ok()) return 1;

  auto client = cluster.NewClient(/*batch=*/8, /*window=*/128);

  // Stage 0 produces inputs; stages 1..3 transform the previous stage's
  // output. Each stage is an operator with its own session (they could be
  // separate processes; sessions are the dependency unit).
  const Stopwatch total;
  {
    auto source = client->NewSession(1);
    for (uint64_t i = 0; i < kItems; ++i) {
      source->Upsert(Slot(0, i), i + 1);
    }
    (void)source->WaitForAll();
  }
  for (uint64_t stage = 1; stage < kStages; ++stage) {
    auto op = client->NewSession(1 + stage);
    const Stopwatch stage_timer;
    for (uint64_t i = 0; i < kItems; ++i) {
      // Dequeue the upstream value (likely still uncommitted!)…
      uint64_t value = 0;
      std::atomic<bool> got{false};
      op->Read(Slot(stage - 1, i), [&](KvResult r, uint64_t v) {
        if (r == KvResult::kOk) value = v;
        got.store(true);
      });
      (void)op->WaitForAll();
      if (!got.load()) continue;
      // …apply this operator's transformation and enqueue downstream.
      op->Upsert(Slot(stage, i), value * 2 + 1);
    }
    (void)op->WaitForAll();
    printf("stage %llu completed %llu hand-offs in %.1f ms — no commit "
           "waits on the critical path\n",
           static_cast<unsigned long long>(stage),
           static_cast<unsigned long long>(kItems),
           stage_timer.ElapsedMillis() * 1.0);
  }
  printf("workflow pipeline finished in %.1f ms\n",
         total.ElapsedMillis() * 1.0);

  // The egress operator defers the user-visible effect until its prefix —
  // which transitively includes every upstream stage — is durable.
  auto egress = client->NewSession(99);
  uint64_t final_value = 0;
  egress->Read(Slot(kStages - 1, kItems - 1), [&](KvResult r, uint64_t v) {
    if (r == KvResult::kOk) final_value = v;
  });
  (void)egress->WaitForAll();
  const Stopwatch commit_timer;
  Status s = egress->WaitForCommit();
  printf("egress: result %llu committed after another %.1f ms (%s) — "
         "now safe to answer the user\n",
         static_cast<unsigned long long>(final_value),
         commit_timer.ElapsedMillis() * 1.0, s.ToString().c_str());
  return 0;
}
