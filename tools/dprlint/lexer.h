#ifndef DPR_TOOLS_DPRLINT_LEXER_H_
#define DPR_TOOLS_DPRLINT_LEXER_H_

#include <string>
#include <vector>

/// dprlint's C++ lexer. Deliberately standalone (no dependency on src/) so
/// the binary builds on any toolchain tier-1 builds on.
///
/// This is a *lexer*, not a parser: it produces a token stream with comments,
/// string/char literals, raw strings, and preprocessor lines stripped out of
/// the code channel but preserved where checks need them (comment text is
/// kept per line for `dprlint: allowed(...)` markers; literals become opaque
/// kString tokens). That is exactly the layer the old grep/awk lints were
/// missing: a keyword inside a comment, a string, or a raw string can never
/// match a code-channel pattern here.
namespace dprlint {

struct Token {
  enum class Kind {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literals (digit separators handled)
    kString,   // string literal, char literal, or raw string (opaque)
    kPunct,    // operators/punctuation; multi-char ::, ->, etc. kept whole
    kPreproc,  // a full preprocessor line (continuations folded in)
  };
  Kind kind;
  std::string text;  // kString: unquoted decoded-ish spelling is NOT needed;
                     // holds the raw spelling so checks can ignore it.
  int line = 0;      // 1-based line of the first character
  int col = 0;       // 1-based column of the first character
};

/// One lexed file: the code-channel token stream plus the comment channel.
struct LexedSource {
  std::vector<Token> tokens;
  /// 1-based; comments_by_line[i] is the concatenation of all comment text
  /// that lies on line i (a block comment spanning lines contributes its
  /// per-line slice to each line it covers). Empty string = no comment.
  std::vector<std::string> comments_by_line;
  /// 1-based; true when line i carries at least one code token. Used for the
  /// "comment block immediately above" allow-marker attachment rule.
  std::vector<bool> line_has_code;
  int line_count = 0;
};

/// Lexes `src`. Never fails: malformed input (unterminated literals or block
/// comments) is consumed to end of file, which matches how a compiler would
/// diagnose-and-recover and keeps the linter total.
LexedSource Lex(const std::string& src);

}  // namespace dprlint

#endif  // DPR_TOOLS_DPRLINT_LEXER_H_
