#ifndef DPR_TOOLS_DPRLINT_DPRLINT_H_
#define DPR_TOOLS_DPRLINT_DPRLINT_H_

#include <string>
#include <utility>
#include <vector>

/// dprlint — the repo-aware static analyzer behind scripts/check_analysis.sh.
///
/// Design (DESIGN.md §4k): a real C++ lexer (tools/dprlint/lexer.h) feeds a
/// registry of repo-specific checks. Each check has a stable ID, uniform
/// escape-hatch semantics, and fires only on the code channel — comments,
/// strings, raw strings, and preprocessor text can never false-positive.
///
/// Escape hatch grammar (uniform across every check):
///   // dprlint: allowed(<check-id>) <one-line justification>
///   // dprlint: allowed-file(<check-id>) <one-line justification>
/// `allowed` suppresses findings of <check-id> on the marker's line or, when
/// the marker sits in a comment block (a contiguous run of comment-only
/// lines), on the first code line below that block. `allowed-file`
/// suppresses the check for the whole file. A marker with an unknown check
/// ID or no justification is itself reported (check `allow-syntax`).
namespace dprlint {

struct Finding {
  std::string check;    // stable check ID, e.g. "lock-blocking"
  std::string file;     // path as scanned (normalized to forward slashes)
  int line = 0;         // 1-based
  int col = 0;          // 1-based
  std::string message;  // human-readable; includes the offending spelling
};

struct CheckInfo {
  const char* id;
  const char* summary;
};

/// The check registry, in reporting order. IDs are stable: they appear in
/// escape-hatch markers, test assertions, and baselines, so renaming one is
/// a breaking change to the tree's annotations.
const std::vector<CheckInfo>& Registry();

/// Analyzes in-memory (path, content) pairs. This is the whole analyzer —
/// the binary just loads files from disk and feeds them here — so tests can
/// drive every check hermetically. Paths matter: several checks scope by
/// directory segment (net/, storage/, ckpt/, obs/) or filename
/// (common/sync.h), mirroring the old per-directory grep lints.
std::vector<Finding> AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Walks `paths` (files, or directories searched recursively for
/// *.h/*.cc/*.hpp/*.cpp), analyzes them, and subtracts `baseline_path` (a
/// --json findings file; empty string = no baseline). Unreadable inputs are
/// reported through `errors`.
std::vector<Finding> RunOnPaths(const std::vector<std::string>& paths,
                                const std::string& baseline_path,
                                std::vector<std::string>* errors);

std::string ToJson(const std::vector<Finding>& findings);
std::string ToText(const std::vector<Finding>& findings);

}  // namespace dprlint

#endif  // DPR_TOOLS_DPRLINT_DPRLINT_H_
