// dprlint — repo-aware static analyzer for the DPR tree. See DESIGN.md §4k.
//
// Usage:
//   dprlint [--json] [--baseline <findings.json>] <path>...
//   dprlint --list-checks
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <string>
#include <vector>

#include "dprlint.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dprlint [--json] [--baseline <file>] <path>...\n"
               "       dprlint --list-checks\n"
               "Scans *.h/*.cc under each path; prints findings and exits\n"
               "nonzero if any. Suppress a finding with a justified marker:\n"
               "  // dprlint: allowed(<check-id>) <why>\n"
               "  // dprlint: allowed-file(<check-id>) <why>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string baseline;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-checks") {
      for (const auto& c : dprlint::Registry()) {
        std::printf("%-16s %s\n", c.id, c.summary);
      }
      return 0;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      baseline = argv[++i];
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(11);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dprlint: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    Usage();
    return 2;
  }
  std::vector<std::string> errors;
  std::vector<dprlint::Finding> findings =
      dprlint::RunOnPaths(paths, baseline, &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "dprlint: %s\n", e.c_str());
  }
  if (json) {
    std::fputs(dprlint::ToJson(findings).c_str(), stdout);
  } else {
    std::fputs(dprlint::ToText(findings).c_str(), stdout);
    std::fprintf(stderr, "dprlint: %zu finding(s)\n", findings.size());
  }
  if (!errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
