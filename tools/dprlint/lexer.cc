#include "lexer.h"

#include <cctype>

namespace dprlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line/col bookkeeping and phase-2 line
/// splicing: a backslash immediately followed by a newline joins the lines
/// (the line counter still advances, so token positions stay physical).
class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool Eof() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }
  size_t pos() const { return pos_; }

  /// Advances one character, maintaining line/col.
  void Bump() {
    if (Eof()) return;
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  /// True (and consumes) when the cursor sits on a backslash-newline splice.
  bool EatSplice() {
    if (Peek() == '\\' && (Peek(1) == '\n' ||
                           (Peek(1) == '\r' && Peek(2) == '\n'))) {
      Bump();  // backslash
      if (Peek() == '\r') Bump();
      Bump();  // newline
      return true;
    }
    return false;
  }

 private:
  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src), cur_(src) {}

  LexedSource Run() {
    while (!cur_.Eof()) {
      if (cur_.EatSplice()) continue;
      char c = cur_.Peek();
      if (c == '\n' || c == '\r' || c == '\t' || c == ' ' || c == '\f' ||
          c == '\v') {
        if (c == '\n') at_line_start_ = true;
        cur_.Bump();
        continue;
      }
      if (c == '/' && cur_.Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && cur_.Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        LexPreproc();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(cur_.Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString('"');
        continue;
      }
      if (c == '\'') {
        LexString('\'');
        continue;
      }
      LexPunct();
    }
    out_.line_count = cur_.line();
    EnsureLine(out_.line_count);
    return std::move(out_);
  }

 private:
  void EnsureLine(int line) {
    if (static_cast<int>(out_.comments_by_line.size()) <= line) {
      out_.comments_by_line.resize(line + 1);
      out_.line_has_code.resize(line + 1, false);
    }
  }

  void AddComment(int line, const std::string& text) {
    EnsureLine(line);
    if (!out_.comments_by_line[line].empty()) {
      out_.comments_by_line[line] += ' ';
    }
    out_.comments_by_line[line] += text;
  }

  void Emit(Token::Kind kind, std::string text, int line, int col) {
    EnsureLine(line);
    out_.line_has_code[line] = true;
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void LexLineComment() {
    int line = cur_.line();
    std::string text;
    cur_.Bump();
    cur_.Bump();  // "//"
    // A spliced line comment continues onto the next physical line; the
    // continuation text is attached to its own line so markers stay local.
    while (!cur_.Eof() && cur_.Peek() != '\n') {
      if (cur_.EatSplice()) {
        AddComment(line, text);
        text.clear();
        line = cur_.line();
        continue;
      }
      text += cur_.Peek();
      cur_.Bump();
    }
    AddComment(line, text);
  }

  void LexBlockComment() {
    // C/C++ block comments do NOT nest: the first */ ends the comment no
    // matter how many /* appeared inside (the lexer test pins this).
    int line = cur_.line();
    std::string text;
    cur_.Bump();
    cur_.Bump();  // "/*"
    while (!cur_.Eof()) {
      if (cur_.Peek() == '*' && cur_.Peek(1) == '/') {
        cur_.Bump();
        cur_.Bump();
        break;
      }
      if (cur_.Peek() == '\n') {
        AddComment(line, text);
        text.clear();
        cur_.Bump();
        line = cur_.line();
        continue;
      }
      text += cur_.Peek();
      cur_.Bump();
    }
    AddComment(line, text);
  }

  void LexPreproc() {
    int line = cur_.line(), col = cur_.col();
    std::string text;
    while (!cur_.Eof() && cur_.Peek() != '\n') {
      if (cur_.EatSplice()) {
        text += ' ';
        continue;
      }
      // Comments inside a preprocessor line still belong to the comment
      // channel (an allow marker may ride a #define line).
      if (cur_.Peek() == '/' && cur_.Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (cur_.Peek() == '/' && cur_.Peek(1) == '*') {
        LexBlockComment();
        text += ' ';
        continue;
      }
      text += cur_.Peek();
      cur_.Bump();
    }
    Emit(Token::Kind::kPreproc, std::move(text), line, col);
  }

  void LexIdentOrRawString() {
    int line = cur_.line(), col = cur_.col();
    std::string text;
    while (!cur_.Eof() && IsIdentChar(cur_.Peek())) {
      text += cur_.Peek();
      cur_.Bump();
    }
    // Raw-string prefix? R"..., u8R"..., LR"..., uR"..., UR"...
    if (cur_.Peek() == '"' && !text.empty() && text.back() == 'R' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      LexRawString(std::move(text), line, col);
      return;
    }
    // Encoding-prefixed ordinary literal: u8"...", L'x', etc.
    if ((cur_.Peek() == '"' || cur_.Peek() == '\'') &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      LexString(cur_.Peek());
      return;
    }
    Emit(Token::Kind::kIdent, std::move(text), line, col);
  }

  void LexRawString(std::string prefix, int line, int col) {
    std::string text = std::move(prefix);
    text += '"';
    cur_.Bump();  // opening quote
    std::string delim;
    while (!cur_.Eof() && cur_.Peek() != '(') {
      delim += cur_.Peek();
      text += cur_.Peek();
      cur_.Bump();
    }
    if (!cur_.Eof()) {
      text += '(';
      cur_.Bump();
    }
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!cur_.Eof()) {
      // No splices, no escapes: raw string contents are literal.
      window += cur_.Peek();
      text += cur_.Peek();
      cur_.Bump();
      if (window.size() > closer.size()) {
        window.erase(0, window.size() - closer.size());
      }
      if (window == closer) break;
    }
    Emit(Token::Kind::kString, std::move(text), line, col);
  }

  void LexString(char quote) {
    int line = cur_.line(), col = cur_.col();
    std::string text;
    text += quote;
    cur_.Bump();
    while (!cur_.Eof()) {
      if (cur_.EatSplice()) continue;
      char c = cur_.Peek();
      if (c == '\\') {
        text += c;
        cur_.Bump();
        if (!cur_.Eof()) {
          text += cur_.Peek();
          cur_.Bump();
        }
        continue;
      }
      // An unterminated literal stops at end of line, like a compiler's
      // error recovery, so one bad line cannot swallow the rest of a file.
      if (c == '\n') break;
      text += c;
      cur_.Bump();
      if (c == quote) break;
    }
    Emit(Token::Kind::kString, std::move(text), line, col);
  }

  void LexNumber() {
    int line = cur_.line(), col = cur_.col();
    std::string text;
    while (!cur_.Eof()) {
      char c = cur_.Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_') {
        text += c;
        cur_.Bump();
        // Exponent signs join the pp-number: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (cur_.Peek() == '+' || cur_.Peek() == '-')) {
          text += cur_.Peek();
          cur_.Bump();
        }
        continue;
      }
      // Digit separator: 1'000'000 — a quote between alnums is part of the
      // number, not a char literal.
      if (c == '\'' && IsIdentChar(cur_.Peek(1)) && !text.empty() &&
          std::isalnum(static_cast<unsigned char>(text.back()))) {
        text += c;
        cur_.Bump();
        continue;
      }
      break;
    }
    Emit(Token::Kind::kNumber, std::move(text), line, col);
  }

  void LexPunct() {
    int line = cur_.line(), col = cur_.col();
    // Multi-character operators that matter to checks are kept whole so
    // `dev->WriteAt` lexes as [dev, ->, WriteAt] and `SyncIo::Write` as
    // [SyncIo, ::, Write]. Everything else may split; no check cares.
    static const char* kMulti[] = {"->*", "...", "::", "->", "<<=", ">>=",
                                   "<<",  ">>",  "<=", ">=", "==",  "!=",
                                   "&&",  "||",  "+=", "-=", "*=",  "/=",
                                   "%=",  "&=",  "|=", "^=", "++",  "--"};
    for (const char* op : kMulti) {
      size_t n = std::char_traits<char>::length(op);
      bool match = true;
      for (size_t i = 0; i < n; ++i) {
        if (cur_.Peek(i) != op[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        for (size_t i = 0; i < n; ++i) cur_.Bump();
        Emit(Token::Kind::kPunct, op, line, col);
        return;
      }
    }
    std::string text(1, cur_.Peek());
    cur_.Bump();
    Emit(Token::Kind::kPunct, std::move(text), line, col);
  }

  const std::string& src_;
  Cursor cur_;
  LexedSource out_;
  bool at_line_start_ = true;
};

}  // namespace

LexedSource Lex(const std::string& src) { return Lexer(src).Run(); }

}  // namespace dprlint
