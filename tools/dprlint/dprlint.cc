#include "dprlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "lexer.h"

namespace dprlint {
namespace {

// ---------------------------------------------------------------- registry

const std::vector<CheckInfo> kRegistry = {
    {"sync-prim",
     "naked std sync primitive outside common/sync.h; use the annotated, "
     "rank-checked dpr:: wrappers"},
    {"net-raw-write",
     "raw send(2)/write(2)/writev(2)/pwrite(2) under net/; route frame bytes "
     "through TcpWriteFully/TcpWritevFully or the event-loop flush"},
    {"storage-raw-io",
     "raw block I/O syscall outside src/storage/; submit through the "
     "Device/IoEngine API"},
    {"device-shim",
     "retired blocking Device member shim (.WriteAt/.ReadAt); use "
     "SyncIo::Write/Read or the async Submit* API"},
    {"ckpt-interval",
     "fixed-interval checkpoint timer loop; drive cadence through "
     "CkptCadenceController (src/ckpt/)"},
    {"lock-blocking",
     "blocking call (SyncIo::*, SleepMicros, sleep_for, CondVar wait on a "
     "different mutex, Executor::Submit) while a lock guard is live"},
    {"status-discard",
     "result of a Status/StatusOr-returning call is silently discarded"},
    {"atomic-comment",
     "std::atomic field declaration without the one-line memory-order "
     "invariant comment"},
    {"atomic-relaxed",
     "memory_order_relaxed outside src/obs/ without an adjacent relaxed-"
     "justification comment or an annotated atomic field"},
    {"callback-lock",
     "stored std::function/callback invoked while a lock guard is live; "
     "copy it out and invoke after unlock"},
    {"allow-syntax",
     "malformed dprlint marker: unknown check ID or missing justification"},
};

bool KnownCheck(const std::string& id) {
  for (const auto& c : kRegistry) {
    if (id == c.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------- paths

std::string NormalizePath(std::string p) {
  for (char& c : p) {
    if (c == '\\') c = '/';
  }
  return p;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `seg` appears as a whole directory segment of `path`
/// ("src/net/tcp.cc" has segment "net"; "internet/x.cc" does not).
bool HasSegment(const std::string& path, const std::string& seg) {
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    if (path.compare(pos, next - pos, seg) == 0 && next != path.size()) {
      return true;  // directory segments only, not the basename
    }
    pos = next + 1;
  }
  return false;
}

// ---------------------------------------------------------------- contexts

struct AllowMarker {
  std::string id;
  bool file_scope = false;
  bool known_id = false;
  bool has_why = false;
  int line = 0;
};

struct FileCtx {
  std::string path;  // normalized
  LexedSource lex;
  std::vector<Token> code;  // token stream minus preprocessor lines
  std::vector<AllowMarker> markers;
  std::set<std::string> file_allows;
  std::map<int, std::vector<size_t>> markers_by_line;  // into `markers`
};

/// Cross-file facts gathered in the harvest pass, before any check runs.
struct GlobalCtx {
  // status-discard: function names declared with a Status/StatusOr return
  // anywhere in the scan set, and names that are ambiguous because some
  // other declaration with the same name returns something else.
  std::set<std::string> status_bare;
  std::set<std::string> status_qual;  // "Class::Name"
  std::set<std::string> ambiguous_bare;
  // atomic-relaxed: atomic field name -> declaration carries the invariant
  // comment (true if any declaration of that name does).
  std::map<std::string, bool> atomic_fields;
  // callback-lock: type aliases of std::function, and names of fields /
  // parameters declared with a callback type.
  std::set<std::string> callback_aliases;
  std::set<std::string> callback_names;
};

const Token* Tok(const FileCtx& f, size_t i) {
  return i < f.code.size() ? &f.code[i] : nullptr;
}

bool IsIdent(const Token* t, const char* text = nullptr) {
  return t && t->kind == Token::Kind::kIdent && (!text || t->text == text);
}

bool IsPunct(const Token* t, const char* text) {
  return t && t->kind == Token::Kind::kPunct && t->text == text;
}

/// Skips a balanced (...) group; `i` points at the opener. Returns the index
/// one past the matching closer (or end of stream on malformed input).
size_t SkipParens(const FileCtx& f, size_t i) {
  int depth = 0;
  for (; i < f.code.size(); ++i) {
    if (IsPunct(&f.code[i], "(")) ++depth;
    if (IsPunct(&f.code[i], ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

/// Skips balanced template angles; `i` points at "<". Counts ">>" as two
/// closers. Gives up (returns npos) at ";" — not a template argument list.
size_t SkipAngles(const FileCtx& f, size_t i) {
  int depth = 0;
  for (; i < f.code.size(); ++i) {
    const std::string& t = f.code[i].text;
    if (f.code[i].kind == Token::Kind::kPunct) {
      if (t == "<") ++depth;
      if (t == ">") {
        if (--depth == 0) return i + 1;
      }
      if (t == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      }
      if (t == ";" || t == "{" || t == "}") return std::string::npos;
    }
  }
  return std::string::npos;
}

/// Joins token spellings from [begin, end) with no separators: the first
/// constructor argument of `MutexLock g(worker->mu_)` reads back as
/// "worker->mu_" for exact comparison against CondVar wait arguments.
std::string JoinTokens(const FileCtx& f, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < f.code.size(); ++i) {
    out += f.code[i].text;
  }
  return out;
}

/// First top-level argument of the call whose "(" is at `open`: token span
/// [open+1, stop) where stop is the first "," or the matching ")".
std::string FirstArg(const FileCtx& f, size_t open) {
  int depth = 0;
  for (size_t i = open; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "(") ++depth;
    if (t.text == ")") {
      if (--depth == 0) return JoinTokens(f, open + 1, i);
    }
    if (t.text == "," && depth == 1) return JoinTokens(f, open + 1, i);
  }
  return "";
}

// ---------------------------------------------------------------- markers

void ParseMarkers(FileCtx* f) {
  const std::string kTag = "dprlint:";
  for (int line = 1; line < static_cast<int>(f->lex.comments_by_line.size());
       ++line) {
    const std::string& text = f->lex.comments_by_line[line];
    size_t pos = 0;
    while ((pos = text.find(kTag, pos)) != std::string::npos) {
      size_t p = pos + kTag.size();
      pos = p;
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
      bool file_scope = false;
      if (text.compare(p, 13, "allowed-file(") == 0) {
        file_scope = true;
        p += 13;
      } else if (text.compare(p, 8, "allowed(") == 0) {
        p += 8;
      } else {
        continue;  // prose mentioning "dprlint:" is not a marker
      }
      size_t close = text.find(')', p);
      AllowMarker m;
      m.line = line;
      m.file_scope = file_scope;
      if (close == std::string::npos) {
        m.id = text.substr(p);
      } else {
        m.id = text.substr(p, close - p);
        // Justification: everything after the close paren up to the next
        // marker; must contain at least one word.
        size_t why_end = text.find(kTag, close);
        std::string why = text.substr(
            close + 1, why_end == std::string::npos ? std::string::npos
                                                    : why_end - close - 1);
        for (char c : why) {
          if (std::isalnum(static_cast<unsigned char>(c))) {
            m.has_why = true;
            break;
          }
        }
      }
      m.known_id = KnownCheck(m.id);
      f->markers_by_line[line].push_back(f->markers.size());
      if (m.file_scope && m.known_id && m.has_why) f->file_allows.insert(m.id);
      f->markers.push_back(std::move(m));
    }
  }
}

bool LineAllows(const FileCtx& f, const std::string& check, int line) {
  auto it = f.markers_by_line.find(line);
  if (it == f.markers_by_line.end()) return false;
  for (size_t idx : it->second) {
    const AllowMarker& m = f.markers[idx];
    if (m.known_id && m.has_why && m.id == check) return true;
  }
  return false;
}

/// Uniform suppression semantics for every check: file-scope marker, marker
/// on the finding's line, or marker anywhere in the contiguous run of
/// comment-only lines immediately above it. (This is the documented fix for
/// the old awk lints' asymmetry, where only `prev` — exactly one line up —
/// was honored and only the storage lint understood file scope.)
bool Suppressed(const FileCtx& f, const std::string& check, int line) {
  if (f.file_allows.count(check)) return true;
  if (LineAllows(f, check, line)) return true;
  for (int l = line - 1; l >= 1; --l) {
    bool has_code = l < static_cast<int>(f.lex.line_has_code.size()) &&
                    f.lex.line_has_code[l];
    bool has_comment = l < static_cast<int>(f.lex.comments_by_line.size()) &&
                       !f.lex.comments_by_line[l].empty();
    if (has_code || !has_comment) break;  // run of comment-only lines ended
    if (LineAllows(f, check, l)) return true;
  }
  return false;
}

void Report(const FileCtx& f, std::vector<Finding>* out,
            const std::string& check, int line, int col, std::string message) {
  if (Suppressed(f, check, line)) return;
  out->push_back(Finding{check, f.path, line, col, std::move(message)});
}

// ---------------------------------------------------------------- comments

/// Concatenated comment text attached to a declaration that starts on
/// `first_line` and ends on `last_line`: comments on the declaration's own
/// lines plus the comment block immediately above it.
std::string DeclComment(const FileCtx& f, int first_line, int last_line) {
  std::string text;
  auto add = [&](int l) {
    if (l >= 1 && l < static_cast<int>(f.lex.comments_by_line.size()) &&
        !f.lex.comments_by_line[l].empty()) {
      text += f.lex.comments_by_line[l];
      text += ' ';
    }
  };
  for (int l = first_line; l <= last_line; ++l) add(l);
  for (int l = first_line - 1; l >= 1; --l) {
    bool has_code = l < static_cast<int>(f.lex.line_has_code.size()) &&
                    f.lex.line_has_code[l];
    bool has_comment = l < static_cast<int>(f.lex.comments_by_line.size()) &&
                       !f.lex.comments_by_line[l].empty();
    if (has_code || !has_comment) break;
    add(l);
  }
  return text;
}

/// The "established one-line memory-order invariant comment": the comment
/// must actually talk about ordering, not merely exist. Matches the idiom
/// already used across the tree ("relaxed: ...", "published with release;
/// ...", "seq_cst because ...").
bool IsOrderInvariantComment(const std::string& text) {
  static const char* kWords[] = {"relaxed", "acquire",  "release", "acq_rel",
                                 "seq_cst", "ordering", "ordered", "publish",
                                 "monotonic", "happens-before", "fence"};
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (const char* w : kWords) {
    if (lower.find(w) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------- harvest

/// The atomic-invariant checks cover the protocol surface only: test and
/// bench code is full of throwaway counters whose ordering never crosses a
/// correctness boundary, and requiring invariant comments there would bury
/// the real findings in noise.
bool AtomicChecksApply(const FileCtx& f) {
  return !HasSegment(f.path, "tests") && !HasSegment(f.path, "bench") &&
         !HasSegment(f.path, "examples");
}

bool IsTypeContext(const FileCtx& f, size_t i) {
  // Token before position i (the start of a type spelling): a type that
  // opens a declaration is not preceded by "(", "," or "<" (those are
  // parameter and template-argument contexts).
  if (i == 0) return true;
  const Token& p = f.code[i - 1];
  if (p.kind != Token::Kind::kPunct) return true;
  return p.text != "(" && p.text != "," && p.text != "<";
}

const std::set<std::string>& TypePrefixKeywords() {
  static const std::set<std::string> kw = {
      "const",    "static",   "inline",  "virtual", "explicit", "constexpr",
      "extern",   "friend",   "mutable", "typename", "unsigned", "signed",
      "long",     "short",    "struct",  "class",   "enum",     "return",
      "new",      "delete",   "throw",   "case",    "else",     "do",
      "goto",     "using",    "typedef", "operator", "sizeof",  "alignof",
      "co_return", "co_await", "co_yield", "if",    "while",    "for",
      "switch",   "public",   "private", "protected", "template", "noexcept",
      "override", "final",    "auto",    "decltype"};
  return kw;
}

void HarvestStatusFuncs(const FileCtx& f, GlobalCtx* g) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (t.text == "Status" || t.text == "StatusOr") {
      if (!IsTypeContext(f, i)) continue;
      size_t j = i + 1;
      if (t.text == "StatusOr") {
        if (!IsPunct(Tok(f, j), "<")) continue;
        j = SkipAngles(f, j);
        if (j == std::string::npos) continue;
      }
      while (IsPunct(Tok(f, j), "*") || IsPunct(Tok(f, j), "&") ||
             IsPunct(Tok(f, j), "&&"))
        ++j;
      // Declarator chain: Name, or Class::Name (member definition).
      if (!IsIdent(Tok(f, j))) continue;
      std::string qual, name = Tok(f, j)->text;
      ++j;
      while (IsPunct(Tok(f, j), "::") && IsIdent(Tok(f, j + 1))) {
        qual = name;
        name = Tok(f, j + 1)->text;
        j += 2;
      }
      if (!IsPunct(Tok(f, j), "(")) continue;
      if (TypePrefixKeywords().count(name)) continue;
      g->status_bare.insert(name);
      if (!qual.empty()) g->status_qual.insert(qual + "::" + name);
    } else {
      // Ambiguity scan: `<other-type> <name> (` — two consecutive
      // identifiers followed by "(" is (almost) always a declaration, so a
      // name also declared with a non-Status return is never flagged on
      // bare-name evidence alone.
      const Token* n = Tok(f, i + 1);
      const Token* paren = Tok(f, i + 2);
      if (!IsIdent(n) || !IsPunct(paren, "(")) continue;
      if (TypePrefixKeywords().count(t.text)) continue;
      if (TypePrefixKeywords().count(n->text)) continue;
      if (!IsTypeContext(f, i)) continue;
      if (i > 0 && (IsPunct(&f.code[i - 1], ".") ||
                    IsPunct(&f.code[i - 1], "->")))
        continue;
      g->ambiguous_bare.insert(n->text);
    }
  }
}

void HarvestCallbackAliases(const FileCtx& f, GlobalCtx* g) {
  // using Alias = std::function<...>;   (typedef spelling is not used here)
  for (size_t i = 0; i + 5 < f.code.size(); ++i) {
    if (IsIdent(&f.code[i], "using") && IsIdent(Tok(f, i + 1)) &&
        IsPunct(Tok(f, i + 2), "=") && IsIdent(Tok(f, i + 3), "std") &&
        IsPunct(Tok(f, i + 4), "::") && IsIdent(Tok(f, i + 5), "function")) {
      g->callback_aliases.insert(f.code[i + 1].text);
    }
  }
}

void HarvestCallbackNames(const FileCtx& f, GlobalCtx* g) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    size_t j = std::string::npos;  // index after the callback type spelling
    if (IsIdent(&f.code[i], "std") && IsPunct(Tok(f, i + 1), "::") &&
        IsIdent(Tok(f, i + 2), "function") && IsPunct(Tok(f, i + 3), "<")) {
      if (!IsTypeContext(f, i)) {
        // Parameters of callback type count too: a lock-held invocation of
        // a callback argument is just as much a re-entrancy hazard.
      }
      j = SkipAngles(f, i + 3);
    } else if (f.code[i].kind == Token::Kind::kIdent &&
               g->callback_aliases.count(f.code[i].text)) {
      j = i + 1;
    }
    if (j == std::string::npos || j >= f.code.size()) continue;
    while (IsPunct(Tok(f, j), "&") || IsPunct(Tok(f, j), "*") ||
           IsPunct(Tok(f, j), "&&") || IsIdent(Tok(f, j), "const"))
      ++j;
    if (!IsIdent(Tok(f, j))) continue;
    const Token* after = Tok(f, j + 1);
    if (!after) continue;
    bool decl_end =
        (after->kind == Token::Kind::kPunct &&
         (after->text == ";" || after->text == "," || after->text == ")" ||
          after->text == "=" || after->text == "{")) ||
        after->kind == Token::Kind::kIdent;  // trailing macro (GUARDED_BY...)
    if (decl_end) g->callback_names.insert(f.code[j].text);
  }
}

void HarvestAtomicFields(const FileCtx& f, GlobalCtx* g,
                         std::vector<Finding>* findings, bool report) {
  // A contiguous run of atomic field declarations shares the invariant
  // comment written above the first one (the repo idiom for groups of stat
  // counters); track the previous declaration to implement the inheritance.
  int prev_last_line = -2;
  bool prev_has = false;
  for (size_t i = 0; i + 3 < f.code.size(); ++i) {
    if (!IsIdent(&f.code[i], "std") || !IsPunct(Tok(f, i + 1), "::") ||
        !IsIdent(Tok(f, i + 2), "atomic") || !IsPunct(Tok(f, i + 3), "<"))
      continue;
    if (!IsTypeContext(f, i)) continue;  // template arg or parameter type
    size_t j = SkipAngles(f, i + 3);
    if (j == std::string::npos || !IsIdent(Tok(f, j))) continue;
    const std::string& name = Tok(f, j)->text;
    const Token* after = Tok(f, j + 1);
    if (!after) continue;
    bool is_decl =
        (after->kind == Token::Kind::kPunct &&
         (after->text == ";" || after->text == "{" || after->text == "=" ||
          after->text == "," || after->text == "[")) ||
        after->kind == Token::Kind::kIdent;  // trailing macro
    if (!is_decl) continue;  // e.g. a function returning std::atomic<T>
    // Declaration line span: from the "std" token to the terminating ";".
    int first_line = f.code[i].line;
    int last_line = first_line;
    for (size_t k = j; k < f.code.size(); ++k) {
      last_line = f.code[k].line;
      if (IsPunct(&f.code[k], ";")) break;
    }
    bool has = IsOrderInvariantComment(DeclComment(f, first_line, last_line));
    if (!has && first_line == prev_last_line + 1 && prev_has) has = true;
    prev_last_line = last_line;
    prev_has = has;
    auto it = g->atomic_fields.find(name);
    if (it == g->atomic_fields.end()) {
      g->atomic_fields.emplace(name, has);
    } else {
      it->second = it->second || has;
    }
    if (report && AtomicChecksApply(f) && !has) {
      Report(f, findings, "atomic-comment", first_line, f.code[i].col,
             "std::atomic field '" + name +
                 "' lacks the one-line memory-order invariant comment "
                 "(say which orders its operations use and why they suffice)");
    }
  }
}

// ---------------------------------------------------------------- checks

void CheckSyncPrim(const FileCtx& f, std::vector<Finding>* out) {
  if (EndsWith(f.path, "common/sync.h")) return;  // the one allowed wrapper
  static const std::set<std::string> kPrims = {
      "mutex",          "shared_mutex",       "recursive_mutex",
      "timed_mutex",    "recursive_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",     "unique_lock",        "shared_lock",
      "scoped_lock"};
  for (size_t i = 0; i + 2 < f.code.size(); ++i) {
    if (IsIdent(&f.code[i], "std") && IsPunct(Tok(f, i + 1), "::") &&
        IsIdent(Tok(f, i + 2)) && kPrims.count(f.code[i + 2].text)) {
      Report(f, out, "sync-prim", f.code[i].line, f.code[i].col,
             "naked std::" + f.code[i + 2].text +
                 "; use dpr::Mutex/SharedMutex/CondVar from common/sync.h");
    }
  }
}

void CheckRawCalls(const FileCtx& f, std::vector<Finding>* out) {
  const bool in_net = HasSegment(f.path, "net");
  const bool in_storage = HasSegment(f.path, "storage");
  // sendmsg covers the vectored-flush syscall both backends coalesce into;
  // io_uring_enter covers hand-rolled ring submission that would bypass
  // UringRing's batching counters (sqe_batches) and EINTR/EBUSY retry
  // policy. Sanctioned helpers carry `dprlint: allowed(net-raw-write)`.
  static const std::set<std::string> kNet = {"send",   "write",  "writev",
                                             "pwrite", "sendmsg",
                                             "io_uring_enter"};
  static const std::set<std::string> kStorage = {"pwrite", "pread", "pwritev",
                                                 "preadv", "fsync",
                                                 "fdatasync"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (!IsPunct(Tok(f, i + 1), "(")) continue;
    if (i > 0) {
      const Token& p = f.code[i - 1];
      if (p.kind == Token::Kind::kPunct &&
          (p.text == "." || p.text == "->" || p.text == "::"))
        continue;  // member or qualified call, not the libc symbol
    }
    if (in_net && kNet.count(t.text)) {
      Report(f, out, "net-raw-write", t.line, t.col,
             "raw " + t.text +
                 "(2) under net/ bypasses the flush helpers (coalescing "
                 "metrics + torn-frame accounting)");
    }
    if (!in_storage && kStorage.count(t.text)) {
      Report(f, out, "storage-raw-io", t.line, t.col,
             "raw " + t.text +
                 "(2) outside storage/ bypasses the IoEngine (submission "
                 "metrics, fault probes, group-commit scheduler)");
    }
  }
}

void CheckDeviceShim(const FileCtx& f, std::vector<Finding>* out) {
  for (size_t i = 1; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind != Token::Kind::kIdent ||
        (t.text != "WriteAt" && t.text != "ReadAt"))
      continue;
    const Token& p = f.code[i - 1];
    if (p.kind != Token::Kind::kPunct || (p.text != "." && p.text != "->"))
      continue;
    if (!IsPunct(Tok(f, i + 1), "(")) continue;
    Report(f, out, "device-shim", t.line, t.col,
           "blocking Device::" + t.text +
               " shim is retired; use SyncIo::Write/Read or SubmitWrite/"
               "SubmitRead");
  }
}

void CheckCkptInterval(const FileCtx& f, std::vector<Finding>* out) {
  if (HasSegment(f.path, "ckpt")) return;  // the cadence controller itself
  if (!EndsWith(f.path, ".cc")) return;
  // Only files that drive checkpoints can host a rogue timer loop.
  bool drives = false;
  for (size_t i = 0; i + 1 < f.code.size(); ++i) {
    if (IsIdent(&f.code[i]) &&
        (f.code[i].text == "PerformCheckpoint" ||
         f.code[i].text == "TryCommit") &&
        IsPunct(Tok(f, i + 1), "(")) {
      drives = true;
      break;
    }
  }
  if (!drives) return;
  static const std::set<std::string> kSleeps = {"SleepMicros", "SleepFor",
                                                "sleep_for", "WaitFor"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (!IsIdent(&f.code[i]) || !kSleeps.count(f.code[i].text)) continue;
    if (!IsPunct(Tok(f, i + 1), "(")) continue;
    // The whole statement (back to the previous ;/{/} and forward to the
    // next ;) must mention a checkpoint_interval expression — this is the
    // scope upgrade over the old same-line awk match.
    size_t begin = i;
    while (begin > 0) {
      const Token& b = f.code[begin - 1];
      if (b.kind == Token::Kind::kPunct &&
          (b.text == ";" || b.text == "{" || b.text == "}"))
        break;
      --begin;
    }
    size_t end = i;
    while (end < f.code.size() && !IsPunct(&f.code[end], ";")) ++end;
    bool mentions_interval = false;
    for (size_t k = begin; k < end; ++k) {
      if (f.code[k].kind == Token::Kind::kIdent &&
          f.code[k].text.find("checkpoint_interval") != std::string::npos) {
        mentions_interval = true;
        break;
      }
    }
    if (mentions_interval) {
      Report(f, out, "ckpt-interval", f.code[i].line, f.code[i].col,
             "fixed checkpoint_interval sleep in a checkpoint-driving file; "
             "cadence belongs to CkptCadenceController");
    }
  }
}

void CheckAtomicRelaxed(const FileCtx& f, const GlobalCtx& g,
                        std::vector<Finding>* out) {
  if (HasSegment(f.path, "obs")) return;  // metrics plane is all-relaxed
  if (!AtomicChecksApply(f)) return;
  static const std::set<std::string> kAtomicOps = {
      "load",          "store",         "exchange",
      "fetch_add",     "fetch_sub",     "fetch_or",
      "fetch_and",     "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong", "test_and_set", "clear"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (!IsIdent(&f.code[i], "memory_order_relaxed")) continue;
    int line = f.code[i].line;
    // Adjacent justification: a comment mentioning "relaxed" on the line or
    // within the three lines above it.
    bool justified = false;
    for (int l = line; l >= line - 3 && l >= 1; --l) {
      if (l < static_cast<int>(f.lex.comments_by_line.size())) {
        std::string lower;
        for (char c : f.lex.comments_by_line[l])
          lower +=
              static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (lower.find("relaxed") != std::string::npos) {
          justified = true;
          break;
        }
      }
    }
    // Or: the operand is an atomic field whose declaration carries the
    // invariant comment — the justification lives at the declaration and
    // uses inherit it.
    if (!justified) {
      int depth = 0;
      for (size_t k = i; k-- > 0;) {
        const Token& t = f.code[k];
        if (t.kind != Token::Kind::kPunct) continue;
        if (t.text == ")") ++depth;
        if (t.text == "(") {
          if (depth == 0) {
            if (k >= 3 && IsIdent(&f.code[k - 1]) &&
                kAtomicOps.count(f.code[k - 1].text) &&
                (IsPunct(&f.code[k - 2], ".") ||
                 IsPunct(&f.code[k - 2], "->")) &&
                IsIdent(&f.code[k - 3])) {
              auto it = g.atomic_fields.find(f.code[k - 3].text);
              justified = it != g.atomic_fields.end() && it->second;
            }
            break;
          }
          --depth;
        }
      }
    }
    if (!justified) {
      Report(f, out, "atomic-relaxed", line, f.code[i].col,
             "memory_order_relaxed without an adjacent justification comment "
             "or an invariant-annotated atomic field");
    }
  }
}

// --- lock-scope machinery (lock-blocking + callback-lock) -------------------

void CheckLockScopes(const FileCtx& f, const GlobalCtx& g,
                     std::vector<Finding>* out) {
  struct Guard {
    int depth;
    std::string mutex;
    std::string type;
    int line;
  };
  std::vector<Guard> guards;
  std::vector<int> lambda_barriers;  // brace depth of each live lambda body
  std::set<size_t> lambda_bodies;    // token indexes of "{" starting a body
  int depth = 0;

  // Pre-scan for lambda bodies so the main walk can mark barriers: a "[" in
  // expression position introduces a lambda; its body brace severs guard
  // visibility (the body runs later, without the lock).
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (!IsPunct(&f.code[i], "[")) continue;
    bool expr_pos = false;
    if (i > 0) {
      const Token& p = f.code[i - 1];
      expr_pos = (p.kind == Token::Kind::kPunct &&
                  (p.text == "(" || p.text == "," || p.text == "=" ||
                   p.text == "{" || p.text == "&&" || p.text == "||")) ||
                 IsIdent(&p, "return");
    }
    if (!expr_pos) continue;
    int bdepth = 0;
    size_t j = i;
    for (; j < f.code.size(); ++j) {
      if (IsPunct(&f.code[j], "[")) ++bdepth;
      if (IsPunct(&f.code[j], "]")) {
        if (--bdepth == 0) break;
      }
    }
    if (j >= f.code.size()) continue;
    ++j;
    if (IsPunct(Tok(f, j), "(")) j = SkipParens(f, j);
    // Skip specifiers (mutable/noexcept/-> ret) within a short window.
    for (int hops = 0; hops < 10 && j < f.code.size(); ++hops, ++j) {
      const Token& t = f.code[j];
      if (IsPunct(&t, "{")) {
        lambda_bodies.insert(j);
        break;
      }
      if (t.kind == Token::Kind::kPunct &&
          (t.text == ";" || t.text == ")" || t.text == ","))
        break;  // not a lambda after all (array subscript etc.)
    }
  }

  auto live_guards = [&]() {
    std::vector<const Guard*> live;
    int barrier = lambda_barriers.empty() ? 0 : lambda_barriers.back();
    for (const Guard& gd : guards) {
      if (gd.depth >= barrier) live.push_back(&gd);
    }
    return live;
  };

  for (size_t i = 0; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (IsPunct(&t, "{")) {
      ++depth;
      if (lambda_bodies.count(i)) lambda_barriers.push_back(depth);
      continue;
    }
    if (IsPunct(&t, "}")) {
      while (!guards.empty() && guards.back().depth >= depth) guards.pop_back();
      while (!lambda_barriers.empty() && lambda_barriers.back() >= depth)
        lambda_barriers.pop_back();
      --depth;
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;

    // Guard declaration: [dpr::] MutexLock|ReaderMutexLock|WriterMutexLock
    // <name> ( <mutex-expr> ...
    if (t.text == "MutexLock" || t.text == "ReaderMutexLock" ||
        t.text == "WriterMutexLock") {
      bool qualified_other = false;
      if (i > 0 && IsPunct(&f.code[i - 1], "::")) {
        qualified_other = !(i >= 2 && IsIdent(&f.code[i - 2], "dpr"));
      }
      if (i > 0 && (IsPunct(&f.code[i - 1], ".") ||
                    IsPunct(&f.code[i - 1], "->")))
        qualified_other = true;
      const Token* name = Tok(f, i + 1);
      const Token* paren = Tok(f, i + 2);
      if (!qualified_other && IsIdent(name) && IsPunct(paren, "(")) {
        guards.push_back(
            Guard{depth, FirstArg(f, i + 2), t.text, t.line});
        continue;
      }
    }

    auto live = live_guards();
    if (live.empty()) continue;
    const Guard* inner = live.back();
    const std::string held = "'" + inner->mutex + "' (guard at line " +
                             std::to_string(inner->line) + ")";

    const Token* prev = i > 0 ? &f.code[i - 1] : nullptr;
    bool member = prev && prev->kind == Token::Kind::kPunct &&
                  (prev->text == "." || prev->text == "->");

    // SyncIo::* — the explicit blocking rendezvous; never under a lock.
    if (t.text == "SyncIo" && IsPunct(Tok(f, i + 1), "::") &&
        IsIdent(Tok(f, i + 2)) && IsPunct(Tok(f, i + 3), "(")) {
      Report(f, out, "lock-blocking", t.line, t.col,
             "SyncIo::" + f.code[i + 2].text + " while holding " + held);
      continue;
    }
    if (!IsPunct(Tok(f, i + 1), "(")) continue;

    if ((t.text == "SleepMicros" && !member) || t.text == "sleep_for") {
      Report(f, out, "lock-blocking", t.line, t.col,
             t.text + " while holding " + held);
      continue;
    }
    // CondVar wait: blocking on a mutex other than one of the held guards'
    // means some OTHER lock stays held across the wait.
    if (member && (t.text == "Wait" || t.text == "WaitFor")) {
      std::string arg = FirstArg(f, i + 1);
      if (!arg.empty()) {
        for (const Guard* gd : live) {
          if (gd->mutex != arg) {
            Report(f, out, "lock-blocking", t.line, t.col,
                   t.text + "(" + arg + ") while also holding '" + gd->mutex +
                       "' (guard at line " + std::to_string(gd->line) + ")");
            break;
          }
        }
      }
      continue;
    }
    // Executor::Submit blocks on the bounded queue when it is full.
    if (member && t.text == "Submit") {
      Report(f, out, "lock-blocking", t.line, t.col,
             "Submit (bounded executor, may block) while holding " + held);
      continue;
    }
    // Stored callback invoked under the lock: re-entrancy + latency hazard.
    if (!member && g.callback_names.count(t.text) &&
        !(prev && prev->kind == Token::Kind::kPunct && prev->text == "::") &&
        !(prev && prev->kind == Token::Kind::kIdent)) {
      Report(f, out, "callback-lock", t.line, t.col,
             "stored callback '" + t.text + "' invoked while holding " + held);
      continue;
    }
    if (member && g.callback_names.count(t.text)) {
      Report(f, out, "callback-lock", t.line, t.col,
             "stored callback '" + t.text + "' invoked while holding " + held);
      continue;
    }
  }
}

// --- status-discard ---------------------------------------------------------

void EvalCallStatement(const FileCtx& f, const GlobalCtx& g, size_t p,
                       size_t semi, std::vector<Finding>* out);

void CheckStatusDiscard(const FileCtx& f, const GlobalCtx& g,
                        std::vector<Finding>* out) {
  // Statement segmentation: runs between ;/{/} boundaries, with ";" only
  // counting at parenthesis depth 0 (for-headers don't split).
  size_t start = 0;
  int paren = 0;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")" && paren > 0) --paren;
      if (t.text == "{" || t.text == "}") {
        start = i + 1;
        paren = 0;
        continue;
      }
      if (t.text == ";" && paren == 0) {
        if (i > start) {
          // Evaluate [start, i] as a candidate expression statement.
          size_t p = start;
          // Strip single-statement control prefixes: if (...) Foo();
          while (p < i) {
            const Token& h = f.code[p];
            if (IsIdent(&h, "if") || IsIdent(&h, "while") ||
                IsIdent(&h, "for") || IsIdent(&h, "switch")) {
              ++p;
              if (IsPunct(Tok(f, p), "(")) p = SkipParens(f, p);
              continue;
            }
            if (IsIdent(&h, "else") || IsIdent(&h, "do")) {
              ++p;
              continue;
            }
            break;
          }
          EvalCallStatement(f, g, p, i, out);
        }
        start = i + 1;
        continue;
      }
    }
  }
}

/// [p, semi) is a statement body; flag it when it is a pure call expression
/// whose callee returns Status/StatusOr. `(void)Foo();` starts with "(" and
/// is the sanctioned explicit-discard spelling, so it never matches.
void EvalCallStatement(const FileCtx& f, const GlobalCtx& g, size_t p,
                       size_t semi, std::vector<Finding>* out) {
  if (p >= semi) return;
  static const std::set<std::string> kRefuse = {
      "return",  "co_return", "throw",   "delete",  "new",     "goto",
      "break",   "continue",  "using",   "typedef", "case",    "default",
      "static_assert", "template", "public", "private", "protected",
      "operator"};
  std::string qual, name;
  if (IsPunct(Tok(f, p), "::")) ++p;
  if (!IsIdent(Tok(f, p)) || kRefuse.count(f.code[p].text)) return;
  name = f.code[p].text;
  ++p;
  int call_line = 0, call_col = 0;
  while (p < semi) {
    // member / scope chain
    while (p < semi && (IsPunct(Tok(f, p), "::") || IsPunct(Tok(f, p), ".") ||
                        IsPunct(Tok(f, p), "->"))) {
      bool scope = f.code[p].text == "::";
      if (!IsIdent(Tok(f, p + 1))) return;
      qual = scope ? name : "";
      name = f.code[p + 1].text;
      p += 2;
    }
    // optional template arguments, only if a call follows
    if (IsPunct(Tok(f, p), "<")) {
      size_t after = SkipAngles(f, p);
      if (after == std::string::npos || !IsPunct(Tok(f, after), "("))
        return;
      p = after;
    }
    if (!IsPunct(Tok(f, p), "(")) return;
    call_line = f.code[p - 1].line;
    call_col = f.code[p - 1].col;
    p = SkipParens(f, p);
    if (p == semi) break;    // statement is exactly a call chain
    // a further member call keeps the chain going: a.b(x).c(y);
    if (!(IsPunct(Tok(f, p), ".") || IsPunct(Tok(f, p), "->"))) return;
  }
  if (p != semi) return;
  if (name.empty() || kRefuse.count(name)) return;
  bool is_status = false;
  if (!qual.empty() && g.status_qual.count(qual + "::" + name)) {
    is_status = true;
  } else if (g.status_bare.count(name) && !g.ambiguous_bare.count(name)) {
    is_status = true;
  }
  if (!is_status) return;
  Report(f, out, "status-discard", call_line, call_col,
         "result of Status-returning '" + name +
             "' is discarded; handle it, DPR_RETURN_NOT_OK it, or spell the "
             "discard (void)" + name + "(...) with a reason");
}

void CheckAllowSyntax(const FileCtx& f, std::vector<Finding>* out) {
  for (const AllowMarker& m : f.markers) {
    if (!m.known_id) {
      out->push_back(Finding{
          "allow-syntax", f.path, m.line, 1,
          "dprlint marker names unknown check '" + m.id +
              "' (see dprlint --list-checks); the marker is not honored"});
    } else if (!m.has_why) {
      out->push_back(Finding{
          "allow-syntax", f.path, m.line, 1,
          "dprlint allowed(" + m.id +
              ") marker lacks a justification; add one line on why the "
              "violation is safe — the marker is not honored without it"});
    }
  }
}

// ---------------------------------------------------------------- driver

std::vector<Finding> Analyze(std::vector<FileCtx>& files) {
  GlobalCtx g;
  std::vector<Finding> findings;
  for (FileCtx& f : files) ParseMarkers(&f);
  // Harvest pass 1: signatures, aliases, atomic declarations. Atomic
  // declarations also produce atomic-comment findings in the same sweep.
  for (FileCtx& f : files) {
    HarvestStatusFuncs(f, &g);
    HarvestCallbackAliases(f, &g);
  }
  std::vector<Finding> atomic_findings;
  for (FileCtx& f : files) {
    HarvestCallbackNames(f, &g);
    HarvestAtomicFields(f, &g, &atomic_findings, /*report=*/true);
  }
  // Check pass 2.
  for (FileCtx& f : files) {
    CheckSyncPrim(f, &findings);
    CheckRawCalls(f, &findings);
    CheckDeviceShim(f, &findings);
    CheckCkptInterval(f, &findings);
    CheckLockScopes(f, g, &findings);
    CheckStatusDiscard(f, g, &findings);
    CheckAtomicRelaxed(f, g, &findings);
    CheckAllowSyntax(f, &findings);
  }
  findings.insert(findings.end(), atomic_findings.begin(),
                  atomic_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return findings;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal extraction of (check, file, line) triples from a --json findings
/// file; tolerant of formatting so a hand-edited baseline still loads.
std::set<std::string> LoadBaseline(const std::string& path,
                                   std::vector<std::string>* errors) {
  std::set<std::string> keys;
  std::ifstream in(path);
  if (!in) {
    errors->push_back("cannot read baseline: " + path);
    return keys;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto field = [&](size_t from, const char* key) -> std::string {
    size_t k = text.find(std::string("\"") + key + "\"", from);
    if (k == std::string::npos) return "";
    size_t colon = text.find(':', k);
    if (colon == std::string::npos) return "";
    size_t v = text.find_first_not_of(" \t\n", colon + 1);
    if (v == std::string::npos) return "";
    if (text[v] == '"') {
      size_t e = text.find('"', v + 1);
      return text.substr(v + 1, e - v - 1);
    }
    size_t e = text.find_first_of(",}\n", v);
    return text.substr(v, e - v);
  };
  size_t pos = 0;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    std::string check = field(pos, "check");
    std::string file = field(pos, "file");
    std::string line = field(pos, "line");
    if (!check.empty() && !file.empty()) {
      keys.insert(check + "\x1f" + file + "\x1f" + line);
    }
    pos = end + 1;
  }
  return keys;
}

}  // namespace

const std::vector<CheckInfo>& Registry() { return kRegistry; }

std::vector<Finding> AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  for (const auto& [path, content] : files) {
    FileCtx ctx;
    ctx.path = NormalizePath(path);
    ctx.lex = Lex(content);
    for (const Token& t : ctx.lex.tokens) {
      if (t.kind != Token::Kind::kPreproc) ctx.code.push_back(t);
    }
    ctxs.push_back(std::move(ctx));
  }
  return Analyze(ctxs);
}

std::vector<Finding> RunOnPaths(const std::vector<std::string>& paths,
                                const std::string& baseline_path,
                                std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> file_paths;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp" ||
           ext == ".cxx" || ext == ".hh";
  };
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(
               p, fs::directory_options::skip_permission_denied, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && want(it->path())) {
          file_paths.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      file_paths.push_back(p);
    } else {
      errors->push_back("no such file or directory: " + p);
    }
  }
  std::sort(file_paths.begin(), file_paths.end());
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(file_paths.size());
  for (const std::string& p : file_paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      errors->push_back("cannot read: " + p);
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    sources.emplace_back(p, ss.str());
  }
  std::vector<Finding> findings = AnalyzeSources(sources);
  if (!baseline_path.empty()) {
    std::set<std::string> baseline = LoadBaseline(baseline_path, errors);
    if (!baseline.empty()) {
      std::vector<Finding> kept;
      for (Finding& fi : findings) {
        const std::string key =
            fi.check + "\x1f" + fi.file + "\x1f" + std::to_string(fi.line);
        if (!baseline.count(key)) kept.push_back(std::move(fi));
      }
      findings = std::move(kept);
    }
  }
  return findings;
}

std::string ToJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += (i ? ",\n " : "\n ");
    out += "{\"check\":\"" + JsonEscape(f.check) + "\",\"file\":\"" +
           JsonEscape(f.file) + "\",\"line\":" + std::to_string(f.line) +
           ",\"col\":" + std::to_string(f.col) + ",\"message\":\"" +
           JsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string ToText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ":" +
           std::to_string(f.col) + ": [" + f.check + "] " + f.message + "\n";
  }
  return out;
}

}  // namespace dprlint
